"""The pattern query service: a long-lived serving layer over BBS.

The paper's index is *dynamic and persistent* (§3.4) — it absorbs
appends without a rebuild — yet a batch CLI re-opens it for every
query.  This package keeps the index resident instead and serves
concurrent clients over a tiny length-prefixed JSON protocol:

* :mod:`repro.service.protocol` — wire frames (requests, responses,
  typed errors) plus sync and asyncio codecs;
* :mod:`repro.service.cache` — the epoch-keyed LRU result cache and
  the micro-batcher that coalesces concurrent ``count`` requests into
  one shared-prefix AND pass;
* :mod:`repro.service.handlers` — the operations (``count``,
  ``append``, ``mine`` jobs, ``status``/``metrics``/``health``) bound
  to a resident database + index;
* :mod:`repro.service.server` — the asyncio TCP server: admission
  limits, per-request timeouts, graceful drain on SIGTERM;
* :mod:`repro.service.client` — the blocking client used by the CLI,
  the tests, and the CI smoke script;
* :mod:`repro.service.resilience` — the retrying idempotent client,
  circuit breaker, and the server-side idempotency token window;
* :mod:`repro.service.scrubber` — background incremental verification
  of the served bytes, with quarantine on findings;
* :mod:`repro.service.supervisor` — ``serve --supervise``: restart a
  crashed worker after storage salvage, or fail over to a standby;
* :mod:`repro.service.replication` — journal-tailing replication:
  follower bootstrap (snapshot shipping + journal catch-up), the
  serving-loop tailer, and promotion to primary;
* :mod:`repro.service.shard` — scatter-gather sharding: a persisted
  range assignment (:class:`ShardMap`), exact merge semantics, and the
  asyncio router that serves the unchanged wire protocol over N shard
  servers.

See DESIGN.md ("Service layer", "Failure model") and
docs/wire_protocol.md.
"""

from repro.service.cache import CountCache, MicroBatcher, canonical_itemset
from repro.service.client import ServiceClient
from repro.service.handlers import PatternService
from repro.service.replication import (
    FollowerTailer,
    ReplicationLog,
    ReplicationState,
    bootstrap_follower,
    parse_address,
    salvage_journal,
)
from repro.service.resilience import (
    CircuitBreaker,
    IdempotencyWindow,
    RetryingClient,
    RetryPolicy,
)
from repro.service.scrubber import Scrubber
from repro.service.server import PatternServer, start_server_thread
from repro.service.shard import ShardEntry, ShardMap, ShardRouter, build_map

__all__ = [
    "CircuitBreaker",
    "CountCache",
    "FollowerTailer",
    "IdempotencyWindow",
    "MicroBatcher",
    "PatternServer",
    "PatternService",
    "ReplicationLog",
    "ReplicationState",
    "RetryPolicy",
    "RetryingClient",
    "Scrubber",
    "ServiceClient",
    "ShardEntry",
    "ShardMap",
    "ShardRouter",
    "bootstrap_follower",
    "build_map",
    "canonical_itemset",
    "parse_address",
    "salvage_journal",
    "start_server_thread",
]
