"""Client-side resilience: retries, deadlines, and a circuit breaker.

:class:`RetryingClient` wraps the blocking :class:`ServiceClient` with
the machinery a long-lived caller needs against a server that crashes,
restarts, drops connections, or stalls:

* a **per-operation deadline** spanning all attempts,
* **capped exponential backoff with jitter** between attempts,
* **automatic reconnect** — every transport failure drops the
  connection and the next attempt dials fresh,
* a **circuit breaker** that stops hammering a server that has failed
  repeatedly, letting one probe through after a cool-down,
* **idempotency tokens** on ``append``: the client generates a random
  64-bit token per logical append and resends the *same* token on every
  retry, so a retry after a lost ACK can never double-insert (the
  server dedupes in :class:`IdempotencyWindow`).

Which failures are retried
--------------------------
Transport failures (``OSError``, timeouts, mid-frame truncation,
connection resets) and the transient wire errors ``overloaded``,
``shutting_down``, and ``timeout`` are retried — but only for
operations that are safe to resend: reads, and appends carrying a
token.  Definitive answers (``bad_request``, ``query``, ``degraded``,
``internal``) are never retried; the server spoke, retrying will not
change its mind.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass

from repro.errors import (
    CircuitOpenError,
    OverloadedError,
    ServiceError,
    ServiceTimeoutError,
)
from repro.service.client import ServiceClient

#: Idempotency tokens live in [2**32, 2**63).  The floor keeps them
#: disjoint from positional transaction ids (small integers counted
#: from 0), which is what lets a restarted server rebuild its token
#: window from the journal: any persisted tid >= 2**32 *is* a token.
TOKEN_MIN = 1 << 32
TOKEN_MAX = 1 << 63

#: Operations that are always safe to resend.  ``promote`` qualifies
#: because promoting an already-primary server is a converging no-op;
#: the replication reads (``replicate``/``snapshot``/``snapshot_fetch``)
#: never mutate server state at all.
IDEMPOTENT_OPS = frozenset(
    {
        "count", "count_batch", "status", "metrics", "health", "job",
        "patterns", "recover", "replicate", "snapshot", "snapshot_fetch",
        "promote", "shardmap",
    }
)

#: Wire error types that describe a transient server condition.
RETRYABLE_ERROR_TYPES = frozenset({"overloaded", "shutting_down", "timeout"})


def make_token(rng: random.Random | None = None) -> int:
    """A fresh idempotency token for one logical append."""
    return (rng or random).randrange(TOKEN_MIN, TOKEN_MAX)


@dataclass(frozen=True)
class RetryPolicy:
    """Knobs for :class:`RetryingClient`.

    ``op_deadline`` bounds one logical operation across *all* attempts,
    backoff sleeps included; ``request_timeout`` bounds a single
    attempt's socket reads so a blackholed connection cannot eat the
    whole deadline.
    """

    max_attempts: int = 4
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.5
    op_deadline: float = 30.0
    request_timeout: float = 10.0
    connect_timeout: float = 5.0

    def backoff(self, attempt: int, rng: random.Random) -> float:
        """Backoff before retry number ``attempt`` (1-based)."""
        delay = min(self.max_delay, self.base_delay * (2 ** (attempt - 1)))
        return delay * (1.0 + self.jitter * rng.random())


class CircuitBreaker:
    """Closed / open / half-open failure gate.

    ``failure_threshold`` consecutive failures open the circuit;
    requests are then refused locally for ``reset_after`` seconds.
    After the cool-down the breaker is *half-open*: attempts are allowed
    again, and the first success closes it while a further failure
    re-opens it for another cool-down.
    """

    def __init__(
        self,
        *,
        failure_threshold: int = 5,
        reset_after: float = 5.0,
        clock=time.monotonic,
    ):
        self.failure_threshold = failure_threshold
        self.reset_after = reset_after
        self._clock = clock
        self._failures = 0
        self._opened_at: float | None = None
        self.opens = 0

    @property
    def state(self) -> str:
        if self._opened_at is None:
            return "closed"
        if self._clock() - self._opened_at >= self.reset_after:
            return "half_open"
        return "open"

    def allow(self) -> bool:
        """May a request be attempted right now?"""
        return self.state != "open"

    def record_success(self) -> None:
        self._failures = 0
        self._opened_at = None

    def record_failure(self) -> None:
        self._failures += 1
        if self._opened_at is not None:
            if self.state == "half_open":
                self._opened_at = self._clock()  # failed probe: re-open
                self.opens += 1
        elif self._failures >= self.failure_threshold:
            self._opened_at = self._clock()
            self.opens += 1

    def as_dict(self) -> dict:
        return {
            "state": self.state,
            "failures": self._failures,
            "opens": self.opens,
        }


class AIMDLimiter:
    """Additive-increase / multiplicative-decrease concurrency limiter.

    The client-side half of the server's admission control: the allowed
    in-flight concurrency grows by ``~1/limit`` per success (one extra
    slot per round-trip-full of successes) and halves on every
    ``overloaded`` shed, the same control law TCP uses for congestion
    windows.  Shared by every thread using one :class:`RetryingClient`
    (or a pool of them against the same server), so a fleet of callers
    converges onto the capacity the server actually has instead of
    hammering it into further shedding.
    """

    def __init__(
        self,
        *,
        initial: float = 8.0,
        min_limit: float = 1.0,
        max_limit: float = 64.0,
        increase: float = 1.0,
        decrease: float = 0.5,
    ):
        self._cond = threading.Condition()
        self.limit = float(initial)
        self.min_limit = float(min_limit)
        self.max_limit = float(max_limit)
        self.increase = increase
        self.decrease = decrease
        self.in_flight = 0
        self.acquired = 0
        self.acquire_timeouts = 0
        self.decreases = 0

    def acquire(self, timeout: float | None = None) -> bool:
        """Take one slot; False if the window stayed full past ``timeout``."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while self.in_flight >= int(self.limit):
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    self.acquire_timeouts += 1
                    return False
                self._cond.wait(remaining)
            self.in_flight += 1
            self.acquired += 1
            return True

    def release(self) -> None:
        with self._cond:
            self.in_flight = max(0, self.in_flight - 1)
            self._cond.notify()

    def on_success(self) -> None:
        """Additive increase: ~one extra slot per window of successes."""
        with self._cond:
            self.limit = min(
                self.max_limit, self.limit + self.increase / max(1.0, self.limit)
            )
            self._cond.notify()

    def on_overloaded(self) -> None:
        """Multiplicative decrease on a shed."""
        with self._cond:
            self.limit = max(self.min_limit, self.limit * self.decrease)
            self.decreases += 1

    def as_dict(self) -> dict:
        with self._cond:
            return {
                "limit": round(self.limit, 2),
                "in_flight": self.in_flight,
                "acquired": self.acquired,
                "acquire_timeouts": self.acquire_timeouts,
                "decreases": self.decreases,
            }


class RetryingClient:
    """A reconnecting, retrying, deadline-bound service client.

    Mirrors the :class:`ServiceClient` operation surface; each call is
    one *logical* operation that may span several attempts over several
    TCP connections.  Connections are dialled lazily and dropped on any
    transport failure.
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        policy: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
        limiter: AIMDLimiter | None = None,
        seed: int | None = None,
    ):
        self.host = host
        self.port = port
        self.policy = policy or RetryPolicy()
        self.breaker = breaker or CircuitBreaker()
        #: Optional shared AIMD window; when set, every logical
        #: operation holds one slot for its whole duration and the
        #: window reacts to ``overloaded`` sheds / successes.
        self.limiter = limiter
        self._rng = random.Random(seed)
        self._client: ServiceClient | None = None
        self.retries = 0
        self.reconnects = 0
        self.sheds_seen = 0

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        self._drop_connection()

    def __enter__(self) -> "RetryingClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def _drop_connection(self) -> None:
        if self._client is not None:
            try:
                self._client.close()
            finally:
                self._client = None

    # -- the retry core ------------------------------------------------------

    def request(
        self,
        op: str,
        args: dict | None = None,
        *,
        idempotent: bool | None = None,
        deadline: float | None = None,
    ) -> dict:
        """One logical operation, retried per the policy.

        ``idempotent`` defaults from the op: reads always, ``append``
        only when ``args`` carries an idempotency token.  Non-idempotent
        operations still retry *connect* failures (nothing was sent) but
        never a failure after the request hit the wire.
        """
        if idempotent is None:
            idempotent = op in IDEMPOTENT_OPS or (
                op == "append" and bool((args or {}).get("token"))
            )
        policy = self.policy
        deadline_ts = time.monotonic() + (
            deadline if deadline is not None else policy.op_deadline
        )
        if self.limiter is not None:
            if not self.limiter.acquire(
                timeout=max(0.0, deadline_ts - time.monotonic())
            ):
                raise ServiceTimeoutError(
                    f"operation {op!r} deadline exhausted waiting for an "
                    f"AIMD concurrency slot"
                )
            try:
                return self._request_attempts(
                    op, args, idempotent=idempotent, deadline_ts=deadline_ts
                )
            finally:
                self.limiter.release()
        return self._request_attempts(
            op, args, idempotent=idempotent, deadline_ts=deadline_ts
        )

    def _request_attempts(
        self,
        op: str,
        args: dict | None,
        *,
        idempotent: bool,
        deadline_ts: float,
    ) -> dict:
        policy = self.policy
        attempt = 0
        last_exc: Exception | None = None
        while True:
            if not self.breaker.allow():
                raise CircuitOpenError(
                    f"circuit open after repeated failures against "
                    f"{self.host}:{self.port}"
                )
            remaining = deadline_ts - time.monotonic()
            if remaining <= 0:
                raise ServiceTimeoutError(
                    f"operation {op!r} deadline exhausted after "
                    f"{attempt} attempt(s)"
                ) from last_exc
            attempt += 1
            sent = False
            try:
                if self._client is None:
                    self._client = ServiceClient(
                        self.host,
                        self.port,
                        timeout=min(policy.request_timeout, remaining),
                        connect_timeout=min(policy.connect_timeout, remaining),
                    )
                    if attempt > 1:
                        self.reconnects += 1
                else:
                    self._client.settimeout(min(policy.request_timeout, remaining))
                sent = True  # past this point the request may have been applied
                # Stamp the attempt with whatever budget is left, so the
                # server (and every hop behind it) stops working for this
                # request the moment we would stop waiting for it.
                budget_ms = max(
                    1.0, (deadline_ts - time.monotonic()) * 1000.0
                )
                result = self._client.request(op, args, deadline_ms=budget_ms)
            except OverloadedError as exc:
                # A request-level shed: the server is healthy, answered
                # typed, and provably dispatched nothing — safe to
                # resend even for non-idempotent ops.  Feeds the AIMD
                # window instead of the circuit breaker (the server
                # spoke; it is not down).
                self.sheds_seen += 1
                if self.limiter is not None:
                    self.limiter.on_overloaded()
                caught, retryable = exc, True
            except ServiceTimeoutError as exc:
                self._note_failure(exc)
                caught, retryable = exc, idempotent or not sent
            except ServiceError as exc:
                if exc.error_type == "protocol":
                    # transport-level: truncated frame, reset, closed
                    self._note_failure(exc)
                    caught, retryable = exc, idempotent or not sent
                elif exc.error_type in RETRYABLE_ERROR_TYPES:
                    # the server answered but cannot serve right now
                    self._note_failure(exc)
                    caught, retryable = exc, idempotent
                else:
                    # a definitive answer: the server is healthy
                    self.breaker.record_success()
                    raise
            except OSError as exc:
                self._note_failure(exc)
                caught, retryable = exc, idempotent or not sent
            else:
                self.breaker.record_success()
                if self.limiter is not None:
                    self.limiter.on_success()
                return result
            last_exc = caught
            if not retryable or attempt >= policy.max_attempts:
                raise caught
            pause = policy.backoff(attempt, self._rng)
            retry_after = getattr(caught, "retry_after", None)
            if retry_after:
                # The server's own capacity estimate is a *floor* on the
                # backoff, never a ceiling.
                pause = max(pause, float(retry_after))
            pause = min(pause, max(0.0, deadline_ts - time.monotonic()))
            if pause:
                time.sleep(pause)
            self.retries += 1

    def _note_failure(self, exc: Exception) -> None:
        self.breaker.record_failure()
        self._drop_connection()

    # -- operations ----------------------------------------------------------

    def count(self, items, *, exact: bool = False) -> dict:
        return self.request("count", {"items": list(items), "exact": exact})

    def count_batch(self, itemsets, *, exact: bool = False) -> dict:
        return self.request(
            "count_batch",
            {"itemsets": [list(items) for items in itemsets], "exact": exact},
        )

    def shardmap(self) -> dict:
        return self.request("shardmap")

    def append(self, items, *, token: int | None = None) -> dict:
        """Insert one transaction exactly once, however many retries.

        A token is generated if the caller does not supply one; the same
        token rides every retry, so the server can deduplicate.
        """
        if token is None:
            token = make_token(self._rng)
        return self.request(
            "append", {"items": list(items), "token": token}, idempotent=True
        )

    def mine(
        self,
        min_support,
        *,
        algorithm: str = "dfp",
        max_size: int | None = None,
        workers: int = 1,
    ) -> str:
        # Submitting a job is not idempotent (each submit is a new job);
        # only connect failures are retried.
        result = self.request(
            "mine",
            {
                "min_support": min_support,
                "algorithm": algorithm,
                "max_size": max_size,
                "workers": workers,
            },
        )
        return result["job_id"]

    def job(self, job_id: str, *, top: int = 0) -> dict:
        return self.request("job", {"job_id": job_id, "top": top})

    def wait_for_job(
        self,
        job_id: str,
        *,
        timeout: float = 60.0,
        poll_interval: float = 0.05,
        top: int = 0,
    ) -> dict:
        """Poll (with retries per poll) until the job settles."""
        deadline = time.monotonic() + timeout
        while True:
            payload = self.job(job_id, top=top)
            state = payload["state"]
            if state == "done":
                return payload
            if state in ("error", "cancelled"):
                raise ServiceError(
                    f"job {job_id} finished as {state}: "
                    f"{payload.get('error', 'no result')}",
                    error_type="query",
                )
            if time.monotonic() >= deadline:
                raise ServiceTimeoutError(
                    f"job {job_id} still {state} after {timeout}s"
                )
            time.sleep(poll_interval)

    def cancel(self, job_id: str) -> dict:
        return self.request("cancel", {"job_id": job_id})

    def patterns(self, *, top: int = 0) -> dict:
        return self.request("patterns", {"top": top})

    def status(self) -> dict:
        return self.request("status")

    def metrics(self) -> dict:
        return self.request("metrics")

    def health(self) -> dict:
        return self.request("health")

    def recover(self) -> dict:
        return self.request("recover")

    def promote(self) -> dict:
        return self.request("promote")

    def shutdown(self) -> dict:
        return self.request("shutdown")


class IdempotencyWindow:
    """Server-side bounded map of append tokens → applied positions.

    The window remembers the last ``capacity`` tokens in arrival order;
    a retried append whose token is still in the window is answered
    from the map instead of re-applied.  Durable servers persist each
    token as the journal record's transaction id, so the window can be
    re-seeded after a crash (see :func:`seed`) and dedupe survives
    kill -9.
    """

    def __init__(self, capacity: int = 4096):
        if capacity <= 0:
            raise ValueError("idempotency window capacity must be positive")
        self.capacity = capacity
        self._tokens: dict[int, int] = {}
        self.hits = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._tokens)

    def lookup(self, token: int) -> int | None:
        """The applied position for ``token``, or None if unseen."""
        position = self._tokens.get(token)
        if position is not None:
            self.hits += 1
        return position

    def record(self, token: int, position: int) -> None:
        """Remember that ``token`` was applied at ``position``."""
        if token in self._tokens:
            self._tokens[token] = position
            return
        while len(self._tokens) >= self.capacity:
            oldest = next(iter(self._tokens))
            del self._tokens[oldest]
            self.evictions += 1
        self._tokens[token] = position

    def seed(self, pairs) -> int:
        """Pre-load ``(token, position)`` pairs (journal replay at boot)."""
        n = 0
        for token, position in pairs:
            self.record(token, position)
            n += 1
        return n

    def as_dict(self) -> dict:
        return {
            "size": len(self._tokens),
            "capacity": self.capacity,
            "hits": self.hits,
            "evictions": self.evictions,
        }
