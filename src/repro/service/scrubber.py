"""Background scrubbing: find silent corruption before a query does.

A :class:`Scrubber` is an asyncio task the server runs next to the
accept loop.  Each tick performs **one bounded unit of work** — verify
one on-disk segment's CRC and commit seal, audit one item's counts
against the database, or sweep the journal pair — so scrubbing never
monopolises the event loop the index handlers share.  Units only run
while the server is idle (no request for ``idle_after`` seconds),
except that after ``max_busy_skips`` consecutive busy ticks one unit is
forced through so a permanently-busy server still makes progress.

On a finding, the scrubber does not keep serving from the damaged
bytes: it calls :meth:`PatternService.quarantine_index`, which flips
the server to degraded read-only mode, quarantines the damage to a
``.quarantine`` sibling, rebuilds lost segments from the resident
database, and re-points the service at the repaired store.  Progress
and findings are surfaced under ``scrub`` in the ``metrics`` op.
"""

from __future__ import annotations

import asyncio
import time
from collections import deque

from repro.errors import ReproError
from repro.storage.txfile import inspect_txfile
from repro.tools.verify import verify_item

#: Findings retained for the metrics endpoint.
MAX_RETAINED_FINDINGS = 32

DEFAULT_INTERVAL_S = 0.25
DEFAULT_MAX_BUSY_SKIPS = 20


class Scrubber:
    """Incremental checksum/count verification over the served state."""

    def __init__(
        self,
        service,
        *,
        interval: float = DEFAULT_INTERVAL_S,
        idle_after: float | None = None,
        db_path=None,
        max_busy_skips: int = DEFAULT_MAX_BUSY_SKIPS,
    ):
        self.service = service
        self.interval = interval
        #: How long the server must have been request-free before a
        #: tick does work; defaults to one interval.
        self.idle_after = interval if idle_after is None else idle_after
        self.db_path = db_path
        self.max_busy_skips = max_busy_skips
        self._schedule: list[tuple] = []
        self._busy_skips = 0
        self.cycles = 0
        self.checks = 0
        self.busy_skips_total = 0
        self.findings: deque[str] = deque(maxlen=MAX_RETAINED_FINDINGS)
        self.last_unit: str | None = None
        service.scrubber = self

    # -- the task body -------------------------------------------------------

    async def run(self) -> None:
        """Tick forever; cancelled by the server on drain."""
        while True:
            await asyncio.sleep(self.interval)
            try:
                self.tick()
            except Exception as exc:  # a scrubber bug must not kill serving
                self.findings.append(
                    f"scrubber stopped on internal error: "
                    f"{type(exc).__name__}: {exc}"
                )
                return

    def tick(self) -> None:
        """One scheduling decision and at most one unit of work."""
        service = self.service
        if service.mode != "ok":
            # Degraded: the operator owns recovery; re-scrubbing the
            # same damage would just re-salvage in a loop.
            return
        idle_for = time.monotonic() - service.last_request_monotonic
        if idle_for < self.idle_after:
            self._busy_skips += 1
            self.busy_skips_total += 1
            if self._busy_skips <= self.max_busy_skips:
                return
        self._busy_skips = 0
        if not self._schedule:
            self._schedule = self._build_schedule()
            if not self._schedule:
                return
            self.cycles += 1
        unit = self._schedule.pop()
        problem = self._run_unit(unit)
        self.checks += 1
        service.database.stats.scrub_checks += 1
        if problem is not None:
            self._handle_finding(problem)

    # -- units ---------------------------------------------------------------

    def _build_schedule(self) -> list[tuple]:
        """One full verification cycle, popped from the end."""
        units: list[tuple] = []
        index = self.service.index
        if self.db_path is not None:
            units.append(("txfile", None))
        for item in self.service.index.items():
            units.append(("item", item))
        if hasattr(index, "verify_segment"):
            # Appended last so segment CRCs — the strongest check — pop
            # first within a cycle.
            units.extend(
                ("segment", i) for i in range(index.n_segments)
            )
        return units

    def _run_unit(self, unit: tuple) -> str | None:
        kind, target = unit
        self.last_unit = f"{kind}:{target}" if target is not None else kind
        try:
            if kind == "segment":
                return self.service.index.verify_segment(target)
            if kind == "item":
                return verify_item(
                    self.service.index, self.service.database, target
                )
            if kind == "txfile":
                report = inspect_txfile(self.db_path)
                if not report.clean:
                    return (
                        f"journal {report.path} needs salvage: "
                        + "; ".join(report.actions[:2])
                    )
                return None
        except (ReproError, OSError) as exc:
            return f"{self.last_unit} check failed: {exc}"
        return None

    def _handle_finding(self, problem: str) -> None:
        service = self.service
        self.findings.append(problem)
        service.database.stats.scrub_findings += 1
        service.quarantine_index(f"scrubber: {problem}")
        # The index object may have been swapped; the stale schedule
        # would verify directory entries that no longer exist.
        self._schedule = []

    # -- observability -------------------------------------------------------

    def as_dict(self) -> dict:
        return {
            "interval_s": self.interval,
            "cycles": self.cycles,
            "checks": self.checks,
            "busy_skips": self.busy_skips_total,
            "pending_units": len(self._schedule),
            "last_unit": self.last_unit,
            "findings": list(self.findings),
        }
