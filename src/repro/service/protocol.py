"""The wire protocol: length-prefixed JSON frames.

Every message — request, response, or error — is one *frame*::

    +----------------+----------------------------------+
    | 4 bytes        | N bytes                          |
    | N (big-endian) | UTF-8 JSON object                |
    +----------------+----------------------------------+

Requests carry ``{"id", "op", "args"}``; the server answers every
request with exactly one frame echoing the ``id``: either
``{"id", "ok": true, "result": {...}}`` or
``{"id", "ok": false, "error": {"type", "message"}}``.

The protocol is deliberately boring: stdlib-only, one frame per
request, no streaming, no negotiation.  Long-running work (mining)
returns a job id immediately and is polled with further requests, so a
connection is never held hostage by a slow operation.  The full spec,
including every error type and the epoch semantics, lives in
docs/wire_protocol.md.
"""

from __future__ import annotations

import asyncio
import contextvars
import json
import socket
import struct
import time
from dataclasses import dataclass

from repro.errors import (
    ConnectionClosedError,
    ServiceProtocolError,
    ServiceTimeoutError,
)

#: Hard cap on one frame's JSON payload.  Large enough for a mined
#: result set, small enough that a garbage length prefix cannot make
#: the server allocate gigabytes.
MAX_FRAME_BYTES = 16 * 1024 * 1024

_LEN = struct.Struct(">I")

# -- error types (the closed vocabulary of the ``error.type`` field) -------

#: The request frame was malformed (bad JSON shape, unknown op, ...).
ERR_BAD_REQUEST = "bad_request"
#: The operation itself failed (empty itemset, unknown job id, ...).
ERR_QUERY = "query"
#: The request exceeded the server's per-request timeout.
ERR_TIMEOUT = "timeout"
#: The server refused the connection: admission limit reached.
ERR_OVERLOADED = "overloaded"
#: The server is draining and no longer accepts new requests.
ERR_SHUTTING_DOWN = "shutting_down"
#: The server is in degraded read-only mode; writes are refused.
ERR_DEGRADED = "degraded"
#: The server is a replication follower; writes must go to the primary.
ERR_NOT_PRIMARY = "not_primary"
#: A scatter-gather router could not reach every shard; the message
#: names the missing transaction ranges.  The answer was *not* served
#: from partial data — the request failed rather than under-counting.
ERR_PARTIAL = "partial"
#: Anything unexpected server-side; the message carries the details.
ERR_INTERNAL = "internal"


@dataclass(frozen=True)
class Request:
    """A parsed request frame.

    ``deadline_ms`` is the caller's *remaining budget* in milliseconds,
    stamped at send time.  It is a relative duration, not a wall-clock
    timestamp, so the two ends of a connection never need agreeing
    clocks; each hop converts it to a monotonic :class:`Deadline` on
    arrival and re-stamps whatever is left when it forwards work.
    """

    id: int
    op: str
    args: dict
    deadline_ms: float | None = None


class Deadline:
    """A monotonic-clock deadline derived from a wire budget.

    Constructed once at frame arrival (``from_budget_ms``); every later
    check compares against ``time.monotonic()``, so in-process clock
    reads are cheap and a slow network hop eats into the budget exactly
    as the caller intended.
    """

    __slots__ = ("expires_at",)

    def __init__(self, expires_at: float):
        self.expires_at = expires_at

    @classmethod
    def from_budget_ms(cls, budget_ms: float) -> Deadline:
        return cls(time.monotonic() + budget_ms / 1000.0)

    @classmethod
    def after(cls, seconds: float) -> Deadline:
        return cls(time.monotonic() + seconds)

    @property
    def remaining_s(self) -> float:
        """Seconds left; never negative."""
        return max(0.0, self.expires_at - time.monotonic())

    @property
    def remaining_ms(self) -> float:
        return self.remaining_s * 1000.0

    @property
    def expired(self) -> bool:
        return time.monotonic() >= self.expires_at

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Deadline(remaining={self.remaining_s:.3f}s)"


#: The deadline governing the request currently being served, if any.
#: The server sets this for the duration of each handler invocation;
#: because every request runs in its own asyncio task (and sub-tasks
#: copy the context at creation), downstream code — most importantly
#: the router's shard links — can read the live budget without every
#: intermediate call signature threading it through.
CURRENT_DEADLINE: contextvars.ContextVar[Deadline | None] = contextvars.ContextVar(
    "repro_service_deadline", default=None
)


def encode_frame(payload: dict) -> bytes:
    """Serialise one message into its wire bytes (length prefix + JSON)."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME_BYTES:
        raise ServiceProtocolError(
            f"frame payload of {len(body)} bytes exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    return _LEN.pack(len(body)) + body


def decode_payload(body: bytes) -> dict:
    """Parse one frame body; always a JSON object."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ServiceProtocolError(f"frame body is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ServiceProtocolError(
            f"frame body must be a JSON object, got {type(payload).__name__}"
        )
    return payload


def parse_request(payload: dict) -> Request:
    """Validate a decoded payload as a request frame."""
    request_id = payload.get("id")
    if not isinstance(request_id, int) or isinstance(request_id, bool):
        raise ServiceProtocolError("request 'id' must be an integer")
    op = payload.get("op")
    if not isinstance(op, str) or not op:
        raise ServiceProtocolError("request 'op' must be a non-empty string")
    args = payload.get("args", {})
    if not isinstance(args, dict):
        raise ServiceProtocolError("request 'args' must be an object")
    deadline_ms = payload.get("deadline_ms")
    if deadline_ms is not None:
        if (
            not isinstance(deadline_ms, (int, float))
            or isinstance(deadline_ms, bool)
            or deadline_ms <= 0
        ):
            raise ServiceProtocolError(
                "request 'deadline_ms' must be a positive number"
            )
        deadline_ms = float(deadline_ms)
    return Request(id=request_id, op=op, args=args, deadline_ms=deadline_ms)


def ok_frame(request_id: int, result: dict) -> dict:
    """A success response payload for ``request_id``."""
    return {"id": request_id, "ok": True, "result": result}


def error_frame(
    request_id: int,
    error_type: str,
    message: str,
    *,
    retry_after: float | None = None,
) -> dict:
    """An error response payload for ``request_id``.

    ``retry_after`` (seconds) rides along on ``overloaded`` sheds: the
    server's estimate of when capacity frees up, which well-behaved
    clients honour as a backoff floor.
    """
    error: dict = {"type": error_type, "message": message}
    if retry_after is not None:
        error["retry_after"] = round(float(retry_after), 4)
    return {
        "id": request_id,
        "ok": False,
        "error": error,
    }


def _check_length(length: int) -> None:
    if length > MAX_FRAME_BYTES:
        raise ServiceProtocolError(
            f"incoming frame announces {length} bytes, over the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )


# -- asyncio codec (server side) -------------------------------------------


async def read_frame(reader: asyncio.StreamReader) -> dict | None:
    """Read one frame; ``None`` on clean EOF before a length prefix."""
    try:
        prefix = await reader.readexactly(_LEN.size)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None  # clean close between frames
        raise ServiceProtocolError(
            f"connection closed mid-length-prefix ({len(exc.partial)}/4 bytes)"
        ) from exc
    (length,) = _LEN.unpack(prefix)
    _check_length(length)
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ServiceProtocolError(
            f"connection closed mid-frame ({len(exc.partial)}/{length} bytes)"
        ) from exc
    return decode_payload(body)


async def write_frame(writer: asyncio.StreamWriter, payload: dict) -> None:
    """Write one frame and flush it to the transport."""
    writer.write(encode_frame(payload))
    await writer.drain()


# -- blocking codec (client side) ------------------------------------------


def _recv_exactly(sock: socket.socket, n: int, *, what: str) -> bytes:
    """Read exactly ``n`` bytes or raise a typed, diagnosable error.

    * A clean close before the first byte of a length prefix is a
      :class:`ConnectionClosedError` — the stream ended on a frame
      boundary, nothing was lost.
    * A close with bytes outstanding is a mid-frame truncation and
      raises :class:`ServiceProtocolError` with the byte counts.
    * A socket timeout surfaces as :class:`ServiceTimeoutError`.
    """
    chunks = []
    remaining = n
    while remaining:
        try:
            chunk = sock.recv(remaining)
        except socket.timeout as exc:
            raise ServiceTimeoutError(
                f"timed out with {remaining}/{n} bytes of the "
                f"{what} outstanding"
            ) from exc
        if not chunk:
            if remaining == n and what == "length prefix":
                raise ConnectionClosedError(
                    "connection closed between frames"
                )
            raise ServiceProtocolError(
                f"connection closed with {remaining}/{n} bytes of the "
                f"{what} outstanding"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame_sock(sock: socket.socket) -> dict:
    """Blocking read of one frame from a connected socket."""
    (length,) = _LEN.unpack(_recv_exactly(sock, _LEN.size, what="length prefix"))
    _check_length(length)
    return decode_payload(_recv_exactly(sock, length, what="frame body"))


def write_frame_sock(sock: socket.socket, payload: dict) -> None:
    """Blocking write of one frame to a connected socket."""
    try:
        sock.sendall(encode_frame(payload))
    except socket.timeout as exc:
        raise ServiceTimeoutError("timed out sending a frame") from exc
