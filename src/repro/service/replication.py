"""Journal-tailing replication: follower catch-up, promotion, failover.

The durable serving story so far is single-process: one server owns
the fsynced transaction journal and the DiskBBS segment log.  This
module turns that journal into a replication log — the same sequential
secondary-memory pass the mining index is already reconstructible from
(Grahne & Zhu, PAPERS.md) — and adds the pieces a warm standby needs:

* :class:`ReplicationLog` — the service layer's **only** journal write
  surface (lint rule RPR008 enforces this).  It wraps a
  :class:`~repro.storage.txfile.TransactionFileWriter` and adds the
  read side replication needs: :meth:`ReplicationLog.read_from` tails
  the pair through a :class:`~repro.storage.txfile.TransactionTailReader`
  while appends continue, and :meth:`ReplicationLog.salvage` heals a
  torn tail in place.
* :class:`ReplicationState` — the role (``primary``/``follower``) and
  catch-up counters the ``status``/``metrics`` ops report, including
  the follower's **lag in tids**.
* :class:`FollowerTailer` — an asyncio task running *on the follower's
  serving loop* (so applies serialise with reads by construction,
  exactly like the primary's own appends) that long-polls the primary's
  ``replicate`` op and applies each record through
  ``PatternService.apply_replicated`` — the normal append path, so
  epochs, caches, and the idempotency window stay correct.
* :func:`bootstrap_follower` — the blocking pre-serve phase: ship a
  snapshot of sealed segments (manifest-verified, see
  :mod:`repro.storage.snapshot`) when the local index is missing, then
  fetch the journal suffix record by record, preserving tids, until the
  local pair covers everything the primary has ACKed.
* :func:`salvage_journal` — the supervisor-facing wrapper around
  journal salvage, so ``service/`` code never touches
  ``salvage_txfile`` directly.

Promotion safety (DESIGN.md §9): a follower refuses writes until the
``promote`` op stops the tailer, reconciles journal-ahead records
(anything fsynced locally but not yet applied in memory), re-seeds
token dedupe from those records, and only then flips the role — so an
append retried against the new primary is deduped if its first attempt
replicated, and applied fresh if it never did.  Exactly once, per
token, across the failover.
"""

from __future__ import annotations

import asyncio
import base64
import time

from repro.errors import (
    ConfigurationError,
    ReproError,
    ServiceError,
    StorageError,
)
from repro.service.client import ServiceClient
from repro.service.protocol import read_frame, write_frame
from repro.storage.metrics import IOStats
from repro.storage.snapshot import SnapshotManifest, assemble_index
from repro.storage.txfile import (
    TransactionFileWriter,
    TransactionTailReader,
    TxSalvageReport,
    salvage_txfile,
)

#: Records per ``replicate`` request during bootstrap and tailing.
DEFAULT_BATCH_RECORDS = 512
#: Server-side cap on one ``replicate`` response.
MAX_BATCH_RECORDS = 4096
#: Server-side cap on one ``replicate`` long-poll.
MAX_WAIT_S = 10.0
#: Bytes per ``snapshot_fetch`` chunk during bootstrap.
DEFAULT_FETCH_BYTES = 1 << 20
#: Pause before a tailer reconnect attempt.
RECONNECT_DELAY_S = 0.5


def parse_address(text: str) -> tuple[str, int]:
    """Split a ``host:port`` string, validating the port."""
    host, sep, port_text = str(text).rpartition(":")
    if not sep or not host:
        raise ConfigurationError(
            f"expected HOST:PORT, got {text!r}"
        )
    try:
        port = int(port_text)
    except ValueError as exc:
        raise ConfigurationError(
            f"expected HOST:PORT with an integer port, got {text!r}"
        ) from exc
    if not 0 < port < 65536:
        raise ConfigurationError(f"port {port} out of range (1-65535)")
    return host, port


def salvage_journal(path, *, stats: IOStats | None = None) -> TxSalvageReport:
    """Heal a journal pair (torn tail, stale index) outside a service.

    The supervisor's pre-start repair hook: ``service/`` code routes
    journal salvage through here (or :meth:`ReplicationLog.salvage`)
    instead of calling the storage layer directly, keeping every
    journal mutation behind one auditable surface (RPR008).
    """
    return salvage_txfile(path, stats=stats)


class ReplicationLog:
    """The journal, as the service layer is allowed to touch it.

    Wraps the append-only :class:`TransactionFileWriter` with the read
    side replication needs.  Everything that mutates the journal from
    ``service/`` — appends, syncs, salvage — goes through this class;
    lint rule RPR008 flags any other construction site.
    """

    def __init__(self, writer: TransactionFileWriter):
        self.writer = writer
        self._tail_reader: TransactionTailReader | None = None

    @classmethod
    def open(
        cls,
        path,
        *,
        truncate: bool = False,
        stats: IOStats | None = None,
    ) -> "ReplicationLog":
        """Open (by default re-open for append) a journal pair."""
        return cls(TransactionFileWriter(path, truncate=truncate, stats=stats))

    # -- writer surface ------------------------------------------------------

    @property
    def path(self):
        return self.writer.path

    @property
    def stats(self) -> IOStats | None:
        return self.writer.stats

    def append(self, items, tid: int | None = None) -> int:
        """Append one record (see :meth:`TransactionFileWriter.append`)."""
        return self.writer.append(items, tid=tid)

    def sync(self) -> None:
        """Fsync data then index."""
        self.writer.sync()

    def close(self) -> None:
        """Close the writer and any tail reader."""
        self._drop_tail_reader()
        self.writer.close()

    def salvage(self) -> TxSalvageReport:
        """Close, heal the pair in place, and re-open for append."""
        path = self.path
        stats = self.stats
        self._drop_tail_reader()
        try:
            self.writer.close()
        except (OSError, StorageError):
            pass  # a failed close still leaves the files salvageable
        report = salvage_txfile(path, stats=stats)
        self.writer = TransactionFileWriter(path, truncate=False, stats=stats)
        return report

    # -- read surface (tailing) ----------------------------------------------

    def _drop_tail_reader(self) -> None:
        if self._tail_reader is not None:
            try:
                self._tail_reader.close()
            except OSError:
                pass  # read handles; nothing durable at stake
            self._tail_reader = None

    def read_from(
        self, position: int, limit: int
    ) -> list[tuple[int, int, tuple[int, ...]]]:
        """Up to ``limit`` journal records from ``position`` onward.

        Safe to interleave with :meth:`append`: the tail reader only
        serves records whose index entries are complete on disk.
        """
        if self._tail_reader is None:
            self._tail_reader = TransactionTailReader(self.path)
        else:
            self._tail_reader.refresh()
        return self._tail_reader.read_from(position, limit)

    def tid_at(self, position: int) -> int | None:
        """The persisted tid of the record at ``position``, or ``None``."""
        records = self.read_from(position, 1)
        if not records:
            return None
        return records[0][1]

    def __enter__(self) -> "ReplicationLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class ReplicationState:
    """Role and catch-up accounting, surfaced by ``status``/``metrics``."""

    def __init__(self, role: str = "primary", upstream: str | None = None):
        if role not in ("primary", "follower"):
            raise ConfigurationError(
                f"replication role must be primary|follower, got {role!r}"
            )
        self.role = role
        self.upstream = upstream
        #: The primary's transaction count as of the last replicate round.
        self.upstream_high_water = 0
        self.rounds = 0
        self.records_applied = 0
        self.connected = False
        self.last_error: str | None = None
        self.last_applied_epoch: int | None = None
        self.promoted_at: float | None = None

    def lag(self, applied: int) -> int:
        """Tids the follower is behind the primary's last observed state."""
        return max(0, self.upstream_high_water - applied)

    def as_dict(self, applied: int) -> dict:
        payload = {
            "role": self.role,
            "upstream": self.upstream,
            "lag": self.lag(applied) if self.role == "follower" else 0,
            "upstream_high_water": self.upstream_high_water,
            "rounds": self.rounds,
            "records_applied": self.records_applied,
            "connected": self.connected,
            "last_error": self.last_error,
            "last_applied_epoch": self.last_applied_epoch,
        }
        if self.promoted_at is not None:
            payload["promoted_seconds_ago"] = time.monotonic() - self.promoted_at
        return payload


class FollowerTailer:
    """Tail the primary's journal from the follower's serving loop.

    Runs as one asyncio task on the same loop as the follower's request
    handlers: each fetched record is applied synchronously between
    awaits, so reads never observe a half-applied insert — the same
    no-locks argument the primary's own append path makes.  Connection
    loss (including mid-stream chaos) is absorbed by reconnecting and
    re-requesting from the follower's own ``len(database)``; dedupe by
    position and token makes the re-request idempotent.
    """

    def __init__(
        self,
        service,
        upstream_host: str,
        upstream_port: int,
        *,
        batch_records: int = DEFAULT_BATCH_RECORDS,
        poll_wait_s: float = 1.0,
        reconnect_delay_s: float = RECONNECT_DELAY_S,
    ):
        self.service = service
        self.upstream_host = upstream_host
        self.upstream_port = upstream_port
        self.batch_records = batch_records
        self.poll_wait_s = poll_wait_s
        self.reconnect_delay_s = reconnect_delay_s
        self._stop = False
        self._next_id = 1

    def request_stop(self) -> None:
        """Ask the loop to exit before its next request (promotion path)."""
        self._stop = True

    async def run(self) -> None:
        """Connect, tail, apply; reconnect forever until stopped."""
        state = self.service.replication
        while not self._stop:
            writer = None
            try:
                reader, writer = await asyncio.open_connection(
                    self.upstream_host, self.upstream_port
                )
                state.connected = True
                state.last_error = None
                while not self._stop:
                    await self._round(reader, writer, state)
            except asyncio.CancelledError:
                raise
            except (ReproError, OSError, asyncio.IncompleteReadError) as exc:
                state.connected = False
                state.last_error = f"{type(exc).__name__}: {exc}"
            finally:
                if writer is not None:
                    writer.close()
            if not self._stop:
                await asyncio.sleep(self.reconnect_delay_s)
        state.connected = False

    async def _round(self, reader, writer, state) -> None:
        """One replicate request/response and its applies."""
        request_id = self._next_id
        self._next_id += 1
        await write_frame(writer, {
            "id": request_id,
            "op": "replicate",
            "args": {
                "from_position": len(self.service.database),
                "max_records": self.batch_records,
                "wait_s": self.poll_wait_s,
            },
        })
        payload = await read_frame(reader)
        if payload is None:
            raise ConnectionResetError("primary closed the replication feed")
        if not payload.get("ok"):
            error = payload.get("error") or {}
            raise ServiceError(
                f"replicate refused: {error.get('message', 'unknown error')}",
                error_type=error.get("type", "internal"),
            )
        result = payload["result"]
        state.rounds += 1
        state.upstream_high_water = int(result["high_water_position"])
        for record in result["records"]:
            if self._stop:
                return
            position, tid, items = record
            if self.service.apply_replicated(
                int(position), int(tid), tuple(int(i) for i in items)
            ):
                state.records_applied += 1


# -- bootstrap ---------------------------------------------------------------


def bootstrap_follower(
    upstream_host: str,
    upstream_port: int,
    *,
    db_path,
    index_path,
    stats: IOStats | None = None,
    batch_records: int = DEFAULT_BATCH_RECORDS,
    fetch_bytes: int = DEFAULT_FETCH_BYTES,
    timeout: float = 60.0,
) -> list[str]:
    """Prepare a follower's on-disk state from a running primary.

    Blocking; runs before the follower starts serving.  Two phases:

    1. **Snapshot shipping** — when the local index file is missing,
       fetch the primary's segment manifest plus the raw bytes of the
       base prologue and every sealed segment (chunked, each span
       CRC-verified against the manifest) and assemble them
       crash-atomically into ``index_path``.
    2. **Journal catch-up** — salvage (or create) the local journal
       pair, then fetch the record suffix the primary has beyond it,
       appending each with its **original tid** (so idempotency tokens
       survive the hop) and fsyncing per batch, until the local journal
       covers the primary's current high water.  The tailer closes any
       gap that opens after this returns.

    Returns human-readable action lines for the serve log.
    """
    from pathlib import Path

    actions: list[str] = []
    db_file = Path(db_path)
    index_file = Path(index_path)
    with ServiceClient(upstream_host, upstream_port, timeout=timeout) as client:
        status = client.request("status")
        if not status.get("durable"):
            raise ConfigurationError(
                f"primary {upstream_host}:{upstream_port} is not durable; "
                f"only --durable servers expose a replicable journal"
            )
        covered = 0
        if not index_file.exists():
            covered = _ship_snapshot(
                client, index_file, stats=stats, fetch_bytes=fetch_bytes,
                actions=actions,
            )
        if db_file.exists():
            report = salvage_journal(db_file, stats=stats)
            if report.repaired:
                actions.append(
                    f"salvaged local journal {db_file.name}: "
                    f"{'; '.join(report.actions)}"
                )
            n_local = report.records_kept
        else:
            n_local = 0
        with ReplicationLog.open(
            db_file, truncate=not db_file.exists(), stats=stats
        ) as journal:
            fetched = _catch_up_journal(
                client, journal, n_local,
                at_least=covered, batch_records=batch_records,
            )
        if fetched:
            actions.append(
                f"fetched {fetched} journal record(s) from "
                f"{upstream_host}:{upstream_port} "
                f"(local journal now {n_local + fetched} record(s))"
            )
    return actions


def _ship_snapshot(
    client: ServiceClient,
    index_file,
    *,
    stats: IOStats | None,
    fetch_bytes: int,
    actions: list[str],
) -> int:
    """Fetch manifest + spans and assemble the index; returns coverage."""
    manifest = SnapshotManifest.from_dict(client.request("snapshot"))
    base_blob = _fetch_part(client, "header", manifest.base_length, fetch_bytes)

    def spans():
        for entry in manifest.segments:
            yield _fetch_part(client, entry.index, entry.length, fetch_bytes)

    assemble_index(manifest, base_blob, spans(), index_file, stats=stats)
    actions.append(
        f"shipped snapshot into {index_file.name}: "
        f"{len(manifest.segments)} segment(s), "
        f"{manifest.covered_transactions} transaction(s), "
        f"{manifest.total_bytes} byte(s), high-water tid "
        f"{manifest.high_water_tid}"
    )
    return manifest.covered_transactions


def _fetch_part(
    client: ServiceClient, part, expected_length: int, fetch_bytes: int
) -> bytes:
    """Chunked ``snapshot_fetch`` of one span (header or a segment)."""
    chunks = []
    offset = 0
    while offset < expected_length or (expected_length == 0 and not chunks):
        payload = client.request(
            "snapshot_fetch",
            {"part": part, "offset": offset, "max_bytes": fetch_bytes},
        )
        blob = base64.b64decode(payload["data"])
        chunks.append(blob)
        offset += len(blob)
        if payload["eof"]:
            break
        if not blob:
            raise ServiceError(
                f"snapshot_fetch of part {part!r} stalled at offset {offset}",
                error_type="protocol",
            )
    return b"".join(chunks)


def _catch_up_journal(
    client: ServiceClient,
    journal: ReplicationLog,
    n_local: int,
    *,
    at_least: int,
    batch_records: int,
) -> int:
    """Fetch journal records [n_local, high water) and append them locally."""
    fetched = 0
    position = n_local
    while True:
        result = client.request(
            "replicate",
            {"from_position": position, "max_records": batch_records},
        )
        records = result["records"]
        for _pos, tid, items in records:
            journal.append([int(i) for i in items], tid=int(tid))
        if records:
            journal.sync()
            fetched += len(records)
            position += len(records)
        high_water = int(result["high_water_position"])
        if position >= max(high_water, at_least) or not records:
            break
    if position < at_least:
        raise StorageError(
            f"journal catch-up stopped at {position} record(s) but the "
            f"shipped snapshot covers {at_least}", path=journal.path,
        )
    return fetched
