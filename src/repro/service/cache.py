"""Result caching and request coalescing for the serving layer.

Two mechanisms keep a hot ``count`` workload off the index:

* :class:`CountCache` — an LRU keyed by ``(canonical itemset, epoch,
  exact)``.  Because the index's :attr:`~repro.core.bbs.BBS.epoch` is
  bumped on every insert, an append invalidates *every* cached entry by
  construction: stale entries simply stop being addressable and age out
  of the LRU.  No sweep, no per-entry dirty bit, no lock ordering
  against the writer.

* :class:`MineResultCache` — a small LRU of *completed* mining results
  keyed by the submission parameters, with the epoch each result was
  computed at.  This is the brownout relief valve: a browned-out
  server answers a repeated ``mine`` from here (marked
  ``degraded_load``, with honest staleness) instead of queueing
  another full mine it cannot afford.

* :class:`MicroBatcher` — coalesces ``count`` requests that arrive in
  the same event-loop window into one drain pass.  Duplicate itemsets
  collapse to a single computation, and distinct itemsets are evaluated
  in sorted signature-position order so that consecutive queries
  sharing a slice-position prefix reuse the partially-ANDed
  accumulator (the same incremental-AND trick the filter recursion
  uses, see DESIGN.md).  Under concurrent load this turns k slice ANDs
  per request into roughly one AND per *distinct new slice*.
"""

from __future__ import annotations

import asyncio
import threading
from collections import OrderedDict

import numpy as np

from repro.core import bitvec
from repro.errors import ConfigurationError, QueryError

DEFAULT_CACHE_ENTRIES = 4096


def _sort_key(item):
    """Stable ordering across mixed item types (ints before strings)."""
    return (type(item).__name__, item)


def canonical_itemset(items) -> tuple:
    """The canonical cache/wire form of an itemset: a sorted tuple.

    Deduplicates, rejects the empty itemset, and orders items with the
    same mixed-type key the database layer uses, so the same itemset
    always maps to the same cache key and the same JSON list.
    """
    canonical = tuple(sorted(set(items), key=_sort_key))
    if not canonical:
        raise QueryError("the empty itemset has no support")
    return canonical


class CountCache:
    """LRU cache of support counts keyed by ``(itemset, epoch, exact)``.

    ``get``/``put`` are O(1); eviction is least-recently-used.  The
    epoch in the key is the whole invalidation story: callers tag every
    entry with the index epoch it was computed at, and a lookup under a
    newer epoch is a miss by definition.
    """

    def __init__(self, max_entries: int = DEFAULT_CACHE_ENTRIES):
        if max_entries < 1:
            raise ConfigurationError(
                f"cache needs max_entries >= 1, got {max_entries}"
            )
        self.max_entries = max_entries
        self._entries: OrderedDict[tuple, int] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, itemset: tuple, epoch: int, *, exact: bool = False) -> int | None:
        """The cached count, or ``None``; refreshes LRU order on hit."""
        key = (itemset, epoch, exact)
        count = self._entries.get(key)
        if count is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return count

    def put(self, itemset: tuple, epoch: int, count: int, *, exact: bool = False) -> None:
        """Insert (or refresh) one entry, evicting the LRU tail if full."""
        key = (itemset, epoch, exact)
        self._entries[key] = count
        self._entries.move_to_end(key)
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (used when the index is swapped or repaired).

        Epoch keying already makes stale entries unaddressable under a
        newer epoch, but entries computed from bytes later found to be
        corrupt must not be reachable even at their original epoch.
        """
        self._entries.clear()

    def as_dict(self) -> dict:
        """Counter snapshot for the ``metrics`` endpoint."""
        return {
            "entries": len(self._entries),
            "max_entries": self.max_entries,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
        }


class MineResultCache:
    """LRU of completed mining results keyed by submission parameters.

    Written from mine-job worker threads (a job stores its result the
    moment it finishes) and read from the serving loop (the brownout
    path), so the tiny critical sections take a lock — unlike the rest
    of this module, which is loop-confined.

    Entries deliberately do *not* carry the epoch in the key: a
    browned-out server would rather serve a slightly stale mine marked
    ``degraded_load`` than none at all.  The stored epoch rides along
    so the answer's ``stale`` flag stays honest.
    """

    def __init__(self, max_entries: int = 16):
        if max_entries < 1:
            raise ConfigurationError(
                f"mine cache needs max_entries >= 1, got {max_entries}"
            )
        self.max_entries = max_entries
        self._lock = threading.Lock()
        self._entries: OrderedDict[tuple, tuple] = OrderedDict()
        self.hits = 0
        self.misses = 0

    def get(self, key: tuple):
        """``(result, epoch)`` for ``key``, or ``None``."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: tuple, result, epoch: int) -> None:
        with self._lock:
            self._entries[key] = (result, epoch)
            self._entries.move_to_end(key)
            while len(self._entries) > self.max_entries:
                self._entries.popitem(last=False)

    def as_dict(self) -> dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self.max_entries,
                "hits": self.hits,
                "misses": self.misses,
            }


class MicroBatcher:
    """Coalesce concurrent ``count`` requests into shared AND passes.

    Callers ``await count(itemset)``; the first request in an idle
    window schedules a drain on the next event-loop tick, and every
    request that lands before the drain runs joins the same batch.  The
    drain then:

    1. collapses duplicate itemsets (each distinct itemset is computed
       once, all waiters share the result), and
    2. orders distinct itemsets by their signature-position tuples and
       walks them with a prefix stack, so two itemsets whose sorted
       slice positions share a prefix reuse the accumulator up to the
       divergence point instead of re-ANDing from all-ones.

    The prefix pass needs the in-memory index's zero-copy hooks
    (:meth:`~repro.core.bbs.BBS.and_positions_into`); a
    :class:`~repro.storage.diskbbs.DiskBBS` resident index falls back
    to per-itemset ``count_itemset`` while keeping the dedup benefit.
    """

    def __init__(self, index):
        self.index = index
        self._pending: dict[tuple, list[asyncio.Future]] = {}
        self._drain_scheduled = False
        # -- metrics ---------------------------------------------------
        self.batches = 0
        self.requests = 0
        self.coalesced = 0       # requests answered by another request's work
        self.slice_ands = 0      # slice ANDs actually performed
        self.slice_ands_saved = 0  # ANDs avoided via shared prefixes

    def rebind(self, index) -> None:
        """Point the batcher at a replacement index object.

        Used after a quarantine-and-salvage swap; counters carry over,
        and pending waiters (resolved against whichever object the next
        drain reads from ``self.index``) see only the fresh store.
        """
        self.index = index

    async def count(self, itemset: tuple) -> int:
        """Estimated support of ``itemset`` (joins the current batch)."""
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self.requests += 1
        waiters = self._pending.setdefault(itemset, [])
        if waiters:
            self.coalesced += 1
        waiters.append(future)
        if not self._drain_scheduled:
            self._drain_scheduled = True
            loop.call_soon(self._drain)
        return await future

    # -- internals ---------------------------------------------------------

    def _drain(self) -> None:
        """Compute every pending itemset in one pass and resolve waiters."""
        self._drain_scheduled = False
        pending, self._pending = self._pending, {}
        if not pending:
            return
        self.batches += 1
        try:
            results = self._count_batch(sorted(pending))
        except Exception as exc:  # propagate to every waiter, once each
            for waiters in pending.values():
                for future in waiters:
                    if not future.done():
                        future.set_exception(exc)
            return
        for itemset, waiters in pending.items():
            count = results[itemset]
            for future in waiters:
                if not future.done():
                    future.set_result(count)

    def _count_batch(self, itemsets: list[tuple]) -> dict[tuple, int]:
        index = self.index
        if not hasattr(index, "and_positions_into"):
            # DiskBBS path: no zero-copy accumulator hooks; dedup only.
            return {itemset: index.count_itemset(itemset) for itemset in itemsets}
        entries = sorted(
            (tuple(int(p) for p in index.signature_positions(itemset)), itemset)
            for itemset in itemsets
        )
        results: dict[tuple, int] = {}
        # stack[d] = (position, accumulator after ANDing positions[:d+1]);
        # consecutive entries share accumulators up to their common prefix.
        stack: list[tuple[int, np.ndarray]] = []
        for positions, itemset in entries:
            depth = 0
            while (
                depth < len(stack)
                and depth < len(positions)
                and stack[depth][0] == positions[depth]
            ):
                depth += 1
            del stack[depth:]
            self.slice_ands_saved += depth
            accumulator = stack[-1][1] if stack else None
            for position in positions[depth:]:
                pos_array = np.array([position], dtype=np.int64)
                if accumulator is None:
                    accumulator = index.fresh_accumulator()
                    index.and_positions_into(accumulator, pos_array, accumulator)
                else:
                    extended = np.empty_like(accumulator)
                    index.and_positions_into(accumulator, pos_array, extended)
                    accumulator = extended
                self.slice_ands += 1
                stack.append((position, accumulator))
            results[itemset] = bitvec.popcount(accumulator)
        return results

    def as_dict(self) -> dict:
        """Counter snapshot for the ``metrics`` endpoint."""
        return {
            "batches": self.batches,
            "requests": self.requests,
            "coalesced": self.coalesced,
            "slice_ands": self.slice_ands,
            "slice_ands_saved": self.slice_ands_saved,
        }
