"""Association-rule generation over mined frequent patterns."""

from repro.rules.association import Rule, generate_rules
from repro.rules.summarize import (
    closed_patterns,
    maximal_patterns,
    summary_counts,
)

__all__ = [
    "Rule",
    "generate_rules",
    "closed_patterns",
    "maximal_patterns",
    "summary_counts",
]
