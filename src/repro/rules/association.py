"""Association-rule generation on top of mined frequent patterns.

Frequent-pattern mining is *"a fundamental step"* — the paper's opening
line — for association rules.  This module closes that loop: given any
:class:`~repro.core.results.MiningResult` (from the BBS schemes or the
baselines), it derives all rules ``antecedent -> consequent`` meeting a
confidence floor, using the standard decomposition of each frequent
itemset into its non-trivial antecedent subsets.

Rules are only derived from patterns with *exact* counts; a DualFilter
result containing bounded (flag-2) counts yields rules only where both
the itemset's and the antecedent's counts are exact, so reported
confidences are never fabricated from upper bounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations

from repro.core.results import MiningResult
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Rule:
    """One association rule with its standard quality measures."""

    antecedent: frozenset
    consequent: frozenset
    support: int            # absolute count of antecedent ∪ consequent
    confidence: float       # support(A ∪ C) / support(A)
    lift: float             # confidence / (support(C) / |D|)

    def __str__(self) -> str:
        lhs = ", ".join(sorted(map(str, self.antecedent)))
        rhs = ", ".join(sorted(map(str, self.consequent)))
        return (
            f"{{{lhs}}} -> {{{rhs}}} "
            f"(support={self.support}, confidence={self.confidence:.3f}, "
            f"lift={self.lift:.3f})"
        )


def generate_rules(
    result: MiningResult,
    min_confidence: float = 0.5,
    *,
    max_consequent_size: int | None = None,
) -> list[Rule]:
    """All rules derivable from ``result`` meeting ``min_confidence``.

    Rules are sorted by descending confidence, then descending support,
    then lexicographically, so output order is deterministic.
    """
    if not 0.0 < min_confidence <= 1.0:
        raise ConfigurationError(
            f"min_confidence must be in (0, 1], got {min_confidence}"
        )
    exact = {
        itemset: pattern.count
        for itemset, pattern in result.patterns.items()
        if pattern.exact
    }
    n = max(result.n_transactions, 1)
    rules: list[Rule] = []
    for itemset, support in exact.items():
        if len(itemset) < 2:
            continue
        items = sorted(itemset, key=repr)
        for antecedent_size in range(1, len(items)):
            consequent_size = len(items) - antecedent_size
            if (max_consequent_size is not None
                    and consequent_size > max_consequent_size):
                continue
            for antecedent_items in combinations(items, antecedent_size):
                antecedent = frozenset(antecedent_items)
                antecedent_support = exact.get(antecedent)
                if not antecedent_support:
                    continue  # not mined exactly; skip rather than guess
                confidence = support / antecedent_support
                if confidence < min_confidence:
                    continue
                consequent = itemset - antecedent
                consequent_support = exact.get(consequent)
                lift = (
                    confidence / (consequent_support / n)
                    if consequent_support
                    else float("nan")
                )
                rules.append(Rule(antecedent, consequent, support, confidence, lift))
    rules.sort(
        key=lambda r: (
            -r.confidence,
            -r.support,
            sorted(map(repr, r.antecedent)),
            sorted(map(repr, r.consequent)),
        ),
    )
    return rules
