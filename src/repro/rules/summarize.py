"""Condensed pattern representations: closed and maximal itemsets.

A full frequent-pattern set is heavily redundant — the paper's default
workload yields thousands of patterns dominated by the subsets of a few
long ones.  Two standard summaries:

* a pattern is **closed** when no proper superset has the *same*
  support (closed patterns preserve every support value);
* a pattern is **maximal** when no proper superset is frequent at all
  (maximal patterns preserve only the frequent/infrequent boundary).

Both are derived from any :class:`~repro.core.results.MiningResult`
with exact counts, so they compose with every miner in the library.
"""

from __future__ import annotations

from collections import defaultdict

from repro.core.results import MiningResult
from repro.errors import ConfigurationError


def _exact_patterns(result: MiningResult) -> dict[frozenset, int]:
    patterns = {
        itemset: p.count for itemset, p in result.patterns.items() if p.exact
    }
    if len(patterns) != len(result.patterns):
        raise ConfigurationError(
            "closed/maximal summaries need exact counts; refine the result "
            "first (DFP with a roomy m, or any scan-refined scheme)"
        )
    return patterns


def closed_patterns(result: MiningResult) -> dict[frozenset, int]:
    """The closed frequent patterns of ``result`` (itemset -> support).

    A pattern survives unless some superset *of equal support* exists.
    Grouping by support makes each check linear in the group size.
    """
    patterns = _exact_patterns(result)
    by_support: dict[int, list[frozenset]] = defaultdict(list)
    for itemset, support in patterns.items():
        by_support[support].append(itemset)
    closed: dict[frozenset, int] = {}
    for support, group in by_support.items():
        # Larger first: a pattern is closed iff no earlier (larger)
        # same-support pattern contains it.
        group.sort(key=len, reverse=True)
        kept: list[frozenset] = []
        for itemset in group:
            if not any(itemset < bigger for bigger in kept):
                kept.append(itemset)
                closed[itemset] = support
    return closed


def maximal_patterns(result: MiningResult) -> dict[frozenset, int]:
    """The maximal frequent patterns of ``result`` (itemset -> support)."""
    patterns = _exact_patterns(result)
    # Group by size; a pattern is maximal iff no frequent superset of
    # size + 1 exists (supersets of larger sizes imply one of size + 1).
    by_size: dict[int, set[frozenset]] = defaultdict(set)
    for itemset in patterns:
        by_size[len(itemset)].add(itemset)
    maximal: dict[frozenset, int] = {}
    for size, group in by_size.items():
        parents = by_size.get(size + 1, set())
        for itemset in group:
            if not any(itemset < parent for parent in parents):
                maximal[itemset] = patterns[itemset]
    return maximal


def summary_counts(result: MiningResult) -> dict[str, int]:
    """Sizes of the three representations (for reports and examples)."""
    return {
        "all": len(result.patterns),
        "closed": len(closed_patterns(result)),
        "maximal": len(maximal_patterns(result)),
    }
