"""BBS — Bit-Sliced Bloom-Filtered Signature Files for frequent-pattern mining.

A production-quality reproduction of *Lan, Ooi & Tan, "Efficient
Indexing Structures for Mining Frequent Patterns", ICDE 2002*.

Quickstart::

    from repro import BBS, TransactionDatabase, mine

    db = TransactionDatabase([("a", "b", "c"), ("a", "b"), ("b", "c")])
    index = BBS.from_database(db, m=64)
    result = mine(db, index, min_support=2, algorithm="dfp")
    for itemset, pattern in sorted(result.patterns.items(), key=str):
        print(sorted(itemset), pattern.count)

See :mod:`repro.core` for the index and the four filter-and-refine
miners (SFS, SFP, DFS, DFP), :mod:`repro.baselines` for Apriori and
FP-growth, :mod:`repro.data` for the synthetic workload generators, and
:mod:`repro.rules` for association-rule generation on top of the mined
patterns.
"""

from repro.baselines import apriori, eclat, fp_growth
from repro.core import (
    BBS,
    MiningResult,
    PatternCount,
    mine,
    mine_dfp,
    mine_dfs,
    mine_sfp,
    mine_sfs,
)
from repro.data import TransactionDatabase
from repro.errors import (
    ConfigurationError,
    CorruptFileError,
    DatabaseMismatchError,
    QueryError,
    ReproError,
    StorageError,
)

__version__ = "1.0.0"

__all__ = [
    "BBS",
    "TransactionDatabase",
    "MiningResult",
    "PatternCount",
    "mine",
    "mine_sfs",
    "mine_sfp",
    "mine_dfs",
    "mine_dfp",
    "apriori",
    "fp_growth",
    "eclat",
    "ReproError",
    "ConfigurationError",
    "StorageError",
    "CorruptFileError",
    "DatabaseMismatchError",
    "QueryError",
    "__version__",
]
