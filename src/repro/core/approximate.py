"""Phase-2-free approximate mining — the paper's stated future work.

The conclusion of the paper: *"We are extending this work by exploring
the possibility of doing away with phase 2 ... we are looking into
mechanisms to provide some kind of probability on the likelihood of a
pattern to be a frequent pattern."*  This module implements that
extension.

Model
-----
For a pattern ``I`` whose query signature sets ``w`` bit positions, a
transaction that does *not* contain ``I`` still passes the AND filter
when all ``w`` positions happen to be set in its signature.  Treating
set bits as independent with density ``d`` (the measured mean fraction
of signature bits set per transaction, :attr:`BBS.mean_signature_density`),
that collision probability is ``d**w`` — the classic Bloom-filter
false-positive rate.  The number of colliding transactions is then
approximately Poisson with mean ``mu = (n - est) * p_hit + est * d**w``
bounded by ``mu ≈ n * d**w``, and the true support is
``act = est - X`` with ``X ~ Poisson(mu)``.  The probability that the
pattern is truly frequent is therefore::

    P(act >= τ) = P(X <= est - τ) = PoissonCDF(est - τ; mu)

This is an approximation (signature bits are not independent), but it
is *conservative in the right direction* for ranking: patterns with
small margins ``est - τ`` and wide signatures get low confidence.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

from repro.core.bbs import BBS
from repro.core.filters import SingleFilter
from repro.core.refine import resolve_threshold
from repro.core.results import MiningResult


@dataclass(frozen=True)
class ApproximatePattern:
    """One pattern with its estimated support and frequency confidence."""

    estimate: int
    probability: float


def frequent_probability(
    *, estimate: int, threshold: int, n_transactions: int,
    signature_width: int, density: float,
) -> float:
    """``P(true support >= threshold)`` under the Poisson collision model."""
    if estimate < threshold:
        return 0.0
    slack = estimate - threshold
    mu = max(0.0, (n_transactions - estimate)) * (density ** signature_width)
    return _poisson_cdf(slack, mu)


def _poisson_cdf(k: int, mu: float) -> float:
    """P(X <= k) for X ~ Poisson(mu), computed stably in pure Python."""
    if mu <= 0.0:
        return 1.0
    total = 0.0
    log_mu = math.log(mu)
    for i in range(k + 1):
        total += math.exp(i * log_mu - mu - math.lgamma(i + 1))
        if total >= 1.0:
            return 1.0
    return min(1.0, total)


def mine_approximate(
    bbs: BBS,
    min_support,
    *,
    min_probability: float = 0.0,
    max_size: int | None = None,
) -> tuple[MiningResult, dict[frozenset, ApproximatePattern]]:
    """Mine with **no refinement phase at all** — index-only answers.

    Returns the usual :class:`MiningResult` (every count is an estimate)
    plus a map of per-pattern confidences.  ``min_probability`` drops
    patterns whose confidence falls below it, trading recall (which the
    exact schemes guarantee) for an even shorter running time.
    """
    threshold = resolve_threshold(min_support, max(bbs.n_transactions, 1))
    result = MiningResult("approximate", threshold, bbs.n_transactions)
    started = time.perf_counter()
    output = SingleFilter(bbs, threshold, max_size=max_size).run()
    result.filter_stats = output.stats
    density = bbs.mean_signature_density
    confidences: dict[frozenset, ApproximatePattern] = {}
    for itemset, estimate in output.candidates:
        width = int(bbs.signature_positions(itemset).size)
        probability = frequent_probability(
            estimate=estimate,
            threshold=threshold,
            n_transactions=bbs.n_transactions,
            signature_width=width,
            density=density,
        )
        if probability < min_probability:
            continue
        result.add_pattern(itemset, estimate, exact=False)
        confidences[itemset] = ApproximatePattern(estimate, probability)
    result.elapsed_seconds = time.perf_counter() - started
    result.io = bbs.stats.snapshot()
    return result, confidences
