"""The refinement phase: ``SequentialScan`` and ``Probe`` (Section 3.2).

Filtering yields a superset of the frequent patterns; refinement removes
the false drops by consulting the actual database.

* :func:`sequential_scan` loads as many candidate patterns as the
  memory budget allows, scans the database once per batch, and keeps
  those whose true support clears τ.
* :func:`probe` fetches only the transactions flagged by the pattern's
  resultant bit vector (through the database's positional index) and
  verifies containment — exactly the access path the paper describes:
  *"the key of the index is the relative position of the transaction
  from the beginning of the file"*.

Both return true supports, so any candidate they confirm is exactly
frequent.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence

import numpy as np

from repro.core.bbs import BBS
from repro.core.results import RefineStats
from repro.data.database import TransactionDatabase
from repro.errors import ConfigurationError, DatabaseMismatchError

#: Simulated in-memory footprint of one resident candidate pattern,
#: used to translate a byte budget into a batch size.
CANDIDATE_BYTES = 64


def sequential_scan(
    database: TransactionDatabase,
    candidates: Sequence[frozenset],
    threshold: int,
    *,
    memory_bytes: int | None = None,
    stats: RefineStats | None = None,
) -> dict[frozenset, int]:
    """Verify ``candidates`` by scanning the database, in memory-sized batches.

    Returns the true support of every candidate that is actually
    frequent.  ``memory_bytes`` bounds how many candidates are resident
    per scan (``None`` = all of them, a single scan).
    """
    stats = stats if stats is not None else RefineStats()
    confirmed: dict[frozenset, int] = {}
    if not candidates:
        return confirmed
    batch_size = len(candidates)
    if memory_bytes is not None:
        batch_size = max(1, memory_bytes // CANDIDATE_BYTES)
    for start in range(0, len(candidates), batch_size):
        batch = candidates[start:start + batch_size]
        counts = {c: 0 for c in batch}
        # Bucket candidates by their least-frequent item: a candidate
        # only needs checking against transactions containing that
        # anchor, turning the inner loop from O(|batch|) into the
        # smallest bucket the candidate admits.
        item_counts = database.item_counts()
        buckets: dict = {}
        for candidate in batch:
            anchor = min(candidate, key=lambda i: (item_counts.get(i, 0), repr(i)))
            buckets.setdefault(anchor, []).append(candidate)
        stats.scans += 1
        for _, itemset in database.scan():
            tx = set(itemset)
            for item in itemset:
                bucket = buckets.get(item)
                if not bucket:
                    continue
                for candidate in bucket:
                    if candidate <= tx:
                        counts[candidate] += 1
        for candidate, count in counts.items():
            if count >= threshold:
                confirmed[candidate] = count
                stats.verified += 1
            else:
                stats.false_drops += 1
    return confirmed


def probe(
    database: TransactionDatabase,
    itemset: frozenset,
    candidate_positions: Iterable[int],
    *,
    stats: RefineStats | None = None,
) -> int:
    """True support of ``itemset`` by fetching only its candidate tuples.

    ``candidate_positions`` are the set bits of the pattern's resultant
    vector (Lemma 3 guarantees they cover every true occurrence, so the
    returned count is exact).
    """
    stats = stats if stats is not None else RefineStats()
    stats.probes += 1
    count = 0
    for position in candidate_positions:
        transaction = database.fetch(int(position))
        stats.probed_tuples += 1
        if itemset <= set(transaction):
            count += 1
    return count


def probe_all(
    database: TransactionDatabase,
    bbs: BBS,
    candidates: Sequence[tuple[frozenset, int]],
    threshold: int,
    *,
    stats: RefineStats | None = None,
) -> dict[frozenset, int]:
    """Probe-verify a whole candidate list (the non-integrated Probe path).

    Used by the adaptive pipeline and ad-hoc queries; SFP/DFP instead
    integrate probing into the filter recursion (Section 3.3).
    """
    if bbs.n_transactions != len(database):
        raise DatabaseMismatchError(
            f"index covers {bbs.n_transactions} transactions, "
            f"database has {len(database)}"
        )
    stats = stats if stats is not None else RefineStats()
    confirmed: dict[frozenset, int] = {}
    for itemset, _est in candidates:
        positions = bbs.candidate_positions(itemset)
        count = probe(database, itemset, positions, stats=stats)
        if count >= threshold:
            confirmed[itemset] = count
            stats.verified += 1
        else:
            stats.false_drops += 1
    return confirmed


def resolve_exact_counts(
    result,
    database: TransactionDatabase,
    bbs: BBS,
    *,
    stats: RefineStats | None = None,
):
    """Upgrade every estimated count in ``result`` to the exact support.

    DualFilter may certify a pattern as frequent while only knowing an
    upper-bound count (flag 2).  Membership is already guaranteed, so
    this probes just those patterns and rewrites their counts in place.
    Returns ``result`` for chaining.
    """
    from repro.core.results import PatternCount

    stats = stats if stats is not None else result.refine_stats
    for itemset, pattern in list(result.patterns.items()):
        if pattern.exact:
            continue
        positions = bbs.candidate_positions(itemset)
        count = probe(database, itemset, positions, stats=stats)
        result.patterns[itemset] = PatternCount(count, exact=True)
    return result


def positions_from_vector(vector: np.ndarray, n_transactions: int) -> np.ndarray:
    """Expand a resultant vector into candidate transaction positions."""
    from repro.core import bitvec

    return bitvec.indices_of_set_bits(vector, n_transactions)


def resolve_threshold(min_support, n_transactions: int) -> int:
    """Normalise a support specification into an absolute count.

    ``min_support`` may be an ``int`` (absolute count, >= 1) or a
    ``float`` in (0, 1] (fraction of the database, the paper's
    percentages).  Fractions round up, so a pattern is frequent iff its
    support is at least ``ceil(frac * |D|)``.
    """
    if isinstance(min_support, bool):
        raise ConfigurationError("min_support must be a count or fraction, not bool")
    if isinstance(min_support, int):
        if min_support < 1:
            raise ConfigurationError(
                f"absolute min_support must be >= 1, got {min_support}"
            )
        return min_support
    if isinstance(min_support, float):
        if not 0.0 < min_support <= 1.0:
            raise ConfigurationError(
                f"fractional min_support must be in (0, 1], got {min_support}"
            )
        return max(1, math.ceil(min_support * n_transactions))
    raise ConfigurationError(
        f"min_support must be int or float, got {type(min_support).__name__}"
    )
