"""Exact 1-itemset counters maintained alongside the BBS.

The DualFilter's certification machinery (Lemma 5 / Corollary 1) needs
the *actual* count of some itemsets.  The paper keeps this cheap: *"For
space efficiency, we only maintain the counts of all 1-itemsets."*

:class:`ItemCountTable` is that table.  It is updated on every insert,
doubles as the item registry that seeds the filter enumeration, and is
persisted inside the slice file so a reloaded BBS remains fully
functional for dual filtering.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable


class ItemCountTable:
    """Exact support count of every individual item seen so far."""

    def __init__(self, counts: dict | None = None):
        self._counts: Counter = Counter(counts or {})

    # -- updates -----------------------------------------------------------

    def record(self, items: Iterable) -> None:
        """Account one transaction's (distinct) items."""
        self._counts.update(set(items))

    def merge(self, other: "ItemCountTable") -> None:
        """Fold another table's counts into this one (partition merging)."""
        self._counts.update(other._counts)

    # -- queries -----------------------------------------------------------

    def count(self, item) -> int:
        """Exact support of ``item`` (0 if never seen)."""
        return self._counts.get(item, 0)

    def __contains__(self, item) -> bool:
        return item in self._counts

    def __len__(self) -> int:
        return len(self._counts)

    def items(self) -> list:
        """All registered items, sorted (stable enumeration order)."""
        return sorted(self._counts, key=_sort_key)

    def frequent_items(self, threshold: int) -> list:
        """Items with exact support >= ``threshold``, sorted."""
        return sorted(
            (i for i, c in self._counts.items() if c >= threshold), key=_sort_key
        )

    def as_dict(self) -> dict:
        """A plain-dict copy (used by the persistence layer)."""
        return dict(self._counts)


def _sort_key(item):
    """Stable ordering across mixed item types (ints before strings)."""
    return (type(item).__name__, item)
