"""Incremental maintenance of a mined result under inserts.

The paper's index absorbs appends without a rebuild (§3.4), but its
miners still recompute the pattern set from scratch on demand.  This
module closes that gap with the classic *negative-border* technique
(Thomas et al., KDD'97 adapted to the BBS substrate): keep exact counts
for

* ``F`` — the current frequent patterns, and
* the **negative border** — the minimal infrequent patterns all of whose
  proper subsets are frequent,

update both with a subset test per inserted transaction, and when a
border pattern crosses the threshold, *promote* it and explore only the
lattice it unlocks — counting each new candidate with one BBS-guided
probe instead of a database scan.  Between promotions an insert costs a
few dictionary bumps; no scan, no re-mining.

Restricted to an **absolute** threshold: with inserts only, counts are
monotone, so patterns never leave ``F`` (a fractional τ grows with |D|
and would require demotions and border re-contraction).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.core.bbs import BBS
from repro.core.mining import mine_dfp
from repro.core.refine import probe, resolve_exact_counts
from repro.core.results import MiningResult, PatternCount, RefineStats
from repro.errors import ConfigurationError, DatabaseMismatchError


class IncrementalMiner:
    """Keep a frequent-pattern set current while transactions stream in.

    Usage::

        miner = IncrementalMiner(db, bbs, min_support=30)
        for tx in stream:
            miner.insert(tx)
        miner.result()   # always-exact MiningResult, no re-mining

    ``database`` and ``bbs`` are taken over by the miner: inserts go
    through :meth:`insert` so the index, the counts, and the border stay
    aligned.
    """

    def __init__(
        self,
        database,
        bbs: BBS,
        min_support: int,
        *,
        max_size: int | None = None,
    ):
        if not isinstance(min_support, int) or isinstance(min_support, bool):
            raise ConfigurationError(
                "IncrementalMiner needs an absolute integer min_support: "
                "a fractional threshold rises with |D| and would demote "
                "patterns, which insert-only maintenance cannot express"
            )
        if min_support < 1:
            raise ConfigurationError("min_support must be >= 1")
        if bbs.n_transactions != len(database):
            raise DatabaseMismatchError(
                f"index covers {bbs.n_transactions} transactions, "
                f"database has {len(database)}"
            )
        self.database = database
        self.bbs = bbs
        self.threshold = min_support
        self.max_size = max_size
        self.refine_stats = RefineStats()
        self.promotions = 0

        # Initial state: exact counts for F, then the negative border.
        base = mine_dfp(database, bbs, min_support, max_size=max_size)
        resolve_exact_counts(base, database, bbs, stats=self.refine_stats)
        self._frequent: dict[frozenset, int] = {
            itemset: pattern.count for itemset, pattern in base.patterns.items()
        }
        self._border: dict[frozenset, int] = {}
        self._buckets: dict = {}  # anchor item -> [patterns containing it]
        for itemset in self._frequent:
            self._bucket(itemset)
        self._build_border()

    # -- public surface ---------------------------------------------------

    def insert(self, items: Iterable) -> None:
        """Append one transaction and bring the pattern set up to date."""
        itemset = frozenset(items)
        self.database.append(itemset)
        self.bbs.insert(itemset)
        # Bump every tracked pattern contained in the transaction.  Each
        # pattern lives in exactly one anchor bucket, so the scan over
        # the transaction's items visits it at most once.
        crossed: list[frozenset] = []
        for item in itemset:
            for pattern in self._buckets.get(item, ()):
                if pattern <= itemset:
                    if pattern in self._frequent:
                        self._frequent[pattern] += 1
                    else:
                        self._border[pattern] += 1
                        if self._border[pattern] >= self.threshold:
                            crossed.append(pattern)
        # New frequent 1-items surface through the exact item table.
        for item in itemset:
            single = frozenset([item])
            if (
                single not in self._frequent
                and single not in self._border
                and self.bbs.item_counts.count(item) >= self.threshold
            ):
                crossed.append(single)
        for pattern in crossed:
            if pattern not in self._frequent:
                self._promote(pattern)

    def patterns(self) -> dict[frozenset, int]:
        """The current frequent patterns with exact counts (a copy)."""
        return dict(self._frequent)

    def result(self) -> MiningResult:
        """The current state packaged as a standard MiningResult."""
        result = MiningResult(
            "incremental", self.threshold, len(self.database)
        )
        for itemset, count in self._frequent.items():
            result.patterns[itemset] = PatternCount(count, exact=True)
        result.refine_stats = self.refine_stats
        return result

    @property
    def border_size(self) -> int:
        """Number of tracked minimal-infrequent patterns (size >= 2)."""
        return len(self._border)

    @property
    def epoch(self) -> int:
        """The underlying index's version counter (see :attr:`BBS.epoch`).

        Every :meth:`insert` routes through ``self.bbs.insert``, so the
        miner's pattern set is exactly as fresh as this number: a result
        tagged with the epoch it was computed at is current iff the tags
        still match.
        """
        return self.bbs.epoch

    # -- internals -----------------------------------------------------------

    def _bucket(self, pattern: frozenset) -> None:
        anchor = min(pattern, key=repr)
        self._buckets.setdefault(anchor, []).append(pattern)

    def _exact_count(self, pattern: frozenset) -> int:
        """One BBS-guided probe: exact support without a scan."""
        positions = self.bbs.candidate_positions(pattern)
        return probe(self.database, pattern, positions, stats=self.refine_stats)

    def _candidate_extensions(self, pattern: frozenset):
        """Minimal supersets of ``pattern`` whose every subset is frequent."""
        if self.max_size is not None and len(pattern) >= self.max_size:
            return
        frequent_items = [
            item for (item,) in
            (tuple(p) for p in self._frequent if len(p) == 1)
        ]
        for item in frequent_items:
            if item in pattern:
                continue
            candidate = pattern | {item}
            if candidate in self._frequent or candidate in self._border:
                continue
            if all(
                candidate - {member} in self._frequent for member in candidate
            ):
                yield candidate

    def _promote(self, pattern: frozenset) -> None:
        """Move a border pattern into F and explore what it unlocks."""
        count = self._border.pop(pattern, None)
        if count is None:
            count = (
                self.bbs.item_counts.count(next(iter(pattern)))
                if len(pattern) == 1
                else self._exact_count(pattern)
            )
            self._bucket(pattern)
        if pattern in self._frequent:
            return
        self._frequent[pattern] = count
        self.promotions += 1
        # The promotion may complete the subset condition for minimal
        # supersets of every frequent pattern it touches; by minimality
        # those supersets are pattern ∪ {frequent item}.
        for candidate in list(self._candidate_extensions(pattern)):
            exact = self._exact_count(candidate)
            if exact >= self.threshold:
                self._border[candidate] = exact  # _promote pops it again
                self._bucket(candidate)
                self._promote(candidate)
            else:
                self._border[candidate] = exact
                self._bucket(candidate)

    def _build_border(self) -> None:
        """Initial negative border: minimal infrequent size->=2 patterns."""
        for pattern in list(self._frequent):
            for candidate in self._candidate_extensions(pattern):
                if len(candidate) < 2:
                    continue
                self._border[candidate] = self._exact_count(candidate)
                self._bucket(candidate)
