"""Persistent worker pools: the sanctioned process-spawn site (RPR009).

Spawning a ``ProcessPoolExecutor`` per mine call is exactly what made
the parallel layer lose wall-clock to serial (``BENCH_parallel.json``
pre-PR-7: modeled 4.0x, wall 0.42x): each call paid process start-up,
a database pickle, and a shared-memory attach for milliseconds of
vector work.  This module owns every executor in ``core/`` — the
invariant linter's RPR009 flags ``ProcessPoolExecutor``/``Pool`` calls
in ``core/`` anywhere else — and keeps them alive across calls:

* :class:`WorkerPool` wraps one executor with crash-aware collection:
  a worker death surfaces as a typed
  :class:`~repro.errors.ParallelExecutionError` and permanently closes
  the pool (a broken executor cannot be reused), letting the owning
  session tear down its shared-memory export instead of leaking it.
* Every live pool is registered for :func:`shutdown_pools`, which runs
  at interpreter exit (``atexit``) and may be called explicitly; owners
  can attach close hooks (the mining session unlinks its shared-memory
  segment from one).

Lifecycle policy is the *owner's* job: :mod:`repro.core.parallel` keys
mining sessions by index identity/epoch and tears them down via
``weakref.finalize`` when the index or database dies; the partitioned
build keeps one generic pool per (workers, start-method).
"""

from __future__ import annotations

import atexit
import os
from concurrent.futures import Future, ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable

from repro.errors import ParallelExecutionError, ReproError

#: Environment override for the multiprocessing start method.
START_METHOD_ENV = "REPRO_PARALLEL_START_METHOD"

#: Every WorkerPool not yet closed, for shutdown_pools()/atexit.
_LIVE_POOLS: list["WorkerPool"] = []


def mp_context():
    """The multiprocessing context honouring ``REPRO_PARALLEL_START_METHOD``."""
    import multiprocessing

    method = os.environ.get(START_METHOD_ENV)
    if method is None:
        available = multiprocessing.get_all_start_methods()
        method = "fork" if "fork" in available else "spawn"
    return multiprocessing.get_context(method)


class WorkerPool:
    """A persistent process pool with typed crash handling.

    The executor is created once and reused for every subsequent
    ``submit``; per-task state travels in the task payload (the mining
    workers reconfigure lazily when the payload's config changes), so
    one pool serves any number of mine/build/scan calls.
    """

    def __init__(
        self,
        workers: int,
        *,
        initializer: Callable[..., None] | None = None,
        initargs: tuple = (),
    ):
        ctx = mp_context()
        self.start_method: str = ctx.get_start_method()
        self.workers = workers
        self.closed = False
        self._close_hooks: list[Callable[[], None]] = []
        self._executor = ProcessPoolExecutor(
            max_workers=workers,
            mp_context=ctx,
            initializer=initializer,
            initargs=initargs,
        )
        _LIVE_POOLS.append(self)

    def submit(self, fn: Callable[..., Any], /, *args: Any) -> Future:
        if self.closed:
            raise ParallelExecutionError(
                "worker pool is closed (a previous task crashed it or it "
                "was shut down); create a new pool"
            )
        try:
            return self._executor.submit(fn, *args)
        except BrokenProcessPool as exc:
            # A worker died between tasks (e.g. kill -9 while idle); the
            # executor notices asynchronously and rejects the submit.
            self.close()
            raise ParallelExecutionError(
                "a parallel worker process died while the pool was idle; "
                "the worker pool was torn down"
            ) from exc

    def worker_pids(self) -> list[int]:
        """PIDs of the live worker processes (empty before first task)."""
        processes = getattr(self._executor, "_processes", None) or {}
        return sorted(processes)

    def add_close_hook(self, hook: Callable[[], None]) -> None:
        """Run ``hook`` exactly once when the pool closes (any path)."""
        self._close_hooks.append(hook)

    def collect(self, futures: dict) -> dict:
        """Gather ``{future: key}`` results, surfacing crashes as typed errors.

        A dead worker (kill -9, ``os._exit``) breaks the whole executor;
        any other task failure leaves worker state suspect.  Either way
        the pool closes itself — running close hooks, so the owning
        session's shared-memory segment is unlinked rather than leaked —
        before the typed error propagates; the next call starts a fresh
        pool.
        """
        payloads = {}
        try:
            for future in as_completed(futures):
                payloads[futures[future]] = future.result()
        except BrokenProcessPool as exc:
            self.close()
            raise ParallelExecutionError(
                "a parallel worker process died mid-run (crash or kill); "
                "partial results were discarded and the worker pool was "
                "torn down"
            ) from exc
        except ReproError:
            self.close()
            raise
        except Exception as exc:
            self.close()
            raise ParallelExecutionError(
                f"a parallel worker task failed: {exc}"
            ) from exc
        return payloads

    def close(self) -> None:
        """Shut the executor down and run close hooks; idempotent."""
        if self.closed:
            return
        self.closed = True
        try:
            self._executor.shutdown(wait=False, cancel_futures=True)
        finally:
            if self in _LIVE_POOLS:
                _LIVE_POOLS.remove(self)
            hooks, self._close_hooks = self._close_hooks, []
            for hook in hooks:
                hook()


def live_pools() -> list[WorkerPool]:
    """The currently open pools (diagnostics and tests)."""
    return list(_LIVE_POOLS)


def shutdown_pools() -> None:
    """Close every live pool (and run their close hooks); idempotent."""
    for pool in list(_LIVE_POOLS):
        pool.close()


atexit.register(shutdown_pools)
