"""The filtering phase: ``SingleFilter`` and ``DualFilter`` (Figures 2 & 4).

Both filters perform the same depth-first enumeration over the item
universe: for an ordered item list ``a1 < a2 < ...``, all patterns
beginning with ``a1`` are explored before ``a2``, and a pattern is only
extended with items *after* its last item, so each itemset is visited at
most once.  A pattern is explored further only while its BBS estimate
stays at or above the threshold.

The enumeration is shared by :class:`FilterEngine`; subclasses decide
what happens when a pattern passes the BBS threshold:

* :class:`SingleFilter` records it as a candidate (Figure 2);
* :class:`DualFilter` runs ``CheckCount`` and partitions the output into
  the guaranteed set ``F`` and the uncertain set ``F'`` (Figure 4);
* the integrated SFP/DFP miners in :mod:`repro.core.mining` subclass the
  engine and probe the database inside :meth:`FilterEngine.visit`.

Performance: the engine batches ``CountItemSet``.  Each item's ``k``
slices are AND-reduced once into a per-item *mask*; at every node of the
recursion, all remaining extensions are evaluated together as one
broadcast ``masks & accumulator`` followed by a row-wise popcount.  A
C++ implementation gets the same effect from tight loops; in Python the
batching is what keeps per-candidate cost at nanoseconds of vector work
instead of microseconds of interpreter overhead.

Correctness of the top-level pruning that shrinks the extension lists:
BBS estimates are *anti-monotone* —
``est(I ∪ {a}) <= min(est(I), est({a}))`` because the union's resultant
vector ANDs a superset of slices.  Hence an item whose 1-estimate is
below τ can never occur in any pattern that passes the filter, and
dropping it from every extension list changes no output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.core import bitvec
from repro.core.bbs import BBS
from repro.core.checkcount import Certainty, check_count
from repro.core.results import FilterStats, PatternCount
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ExtensionItem:
    """Metadata handed to :meth:`FilterEngine.visit` for one extension."""

    item: Any
    root_estimate: int  # estCount({item}) — CheckCount's est(I1)


@dataclass
class FilterOutput:
    """What a filtering phase hands to the refinement phase."""

    #: Every pattern that passed the filter, in discovery order, with the
    #: count the filter knew for it.  For SingleFilter all counts are BBS
    #: estimates; for DualFilter this holds only the uncertain set F'.
    candidates: list[tuple[frozenset, int]] = field(default_factory=list)
    #: DualFilter's guaranteed set F (empty for SingleFilter).
    certain: dict[frozenset, PatternCount] = field(default_factory=dict)
    stats: FilterStats = field(default_factory=FilterStats)


def _row_popcount(matrix: np.ndarray) -> np.ndarray:
    """Set-bit count per row of a 2-D uint64 matrix (backend-dispatched)."""
    return bitvec.row_popcount(matrix)


class FilterEngine:
    """Shared generate-and-filter recursion (GenerateAndFilter routines).

    Parameters
    ----------
    bbs:
        The index to filter on.
    threshold:
        τ as an absolute count.
    items:
        The item universe to enumerate; defaults to every item recorded
        by the index.  Order is canonicalised for determinism.
    max_size:
        Optional cap on pattern length (useful for interactive tuning);
        ``None`` enumerates maximal patterns fully, as the paper does.
    """

    def __init__(
        self,
        bbs: BBS,
        threshold: int,
        *,
        items=None,
        max_size: int | None = None,
        seed=None,
        seed_state=None,
    ):
        if threshold < 1:
            raise ConfigurationError(
                f"minimum support threshold must be >= 1, got {threshold}"
            )
        if max_size is not None and max_size < 1:
            raise ConfigurationError(f"max_size must be >= 1, got {max_size}")
        self.bbs = bbs
        self.threshold = threshold
        self.max_size = max_size
        #: Optional itemset every enumerated pattern must contain: the
        #: enumeration then covers exactly the supersets of ``seed``
        #: (item-constrained mining).  ``seed_state`` is the recursion
        #: state to attach to the seed pattern (subclass-specific).
        self.seed = frozenset(seed) if seed else frozenset()
        self._seed_state = seed_state
        self._universe = bbs.items() if items is None else list(items)
        if self.seed:
            self._universe = [i for i in self._universe if i not in self.seed]
        self.output = FilterOutput()
        # Populated by prepare(): the est-frequent items, their AND-reduced
        # slice masks, their root estimates, and their ExtensionItem views.
        self._items: list = []
        self._masks: np.ndarray | None = None
        self._extensions: list[ExtensionItem] = []
        self._root_indices: np.ndarray | None = None
        self._root_candidates: np.ndarray | None = None
        self._root_estimates: np.ndarray | None = None
        self._prefix: tuple = ()
        self._root_state = None

    # -- strategy hooks -------------------------------------------------------

    def initial_state(self):
        """Recursion state attached to the empty pattern."""
        return None

    def visit(
        self, itemset, est, vector, parent_state, ext: ExtensionItem
    ) -> tuple[bool, Any]:
        """Handle a pattern whose BBS estimate cleared the threshold.

        Returns ``(explore_children, child_state)``.
        """
        raise NotImplementedError

    # -- the enumeration -------------------------------------------------------

    def prepare(self) -> bool:
        """Run the depth-1 pass and stage the surviving root subtrees.

        Computes the per-item masks, the top-level estimates, and the
        pruned extension arrays the recursion works from.  Returns True
        when at least one top-level subtree survives the threshold.
        Idempotent inputs aside, this is the part of :meth:`run` that is
        *shared* work: the parallel layer runs it once per process and
        then walks disjoint subtree subsets via :meth:`run_roots`.
        """
        stats = self.output.stats
        if self.bbs.n_transactions == 0 or not self._universe:
            return False
        n_words = self.bbs.n_words
        masks = np.empty((len(self._universe), n_words), dtype=np.uint64)
        ones = self.bbs.fresh_accumulator()
        for row, item in enumerate(self._universe):
            positions = self.bbs.hash_family.positions(item)
            self.bbs.and_positions_into(ones, positions, masks[row])
        # Depth-1 pass: estimate every 1-itemset once; items below τ can
        # never appear in any surviving pattern (anti-monotonicity).
        item_estimates = _row_popcount(masks)
        stats.count_itemset_calls += len(self._universe)
        if self.seed:
            root_acc = self.bbs.resultant_vector(self.seed)
            prefix = tuple(sorted(self.seed, key=repr))
            root_candidates = masks & root_acc
            root_estimates = _row_popcount(root_candidates)
            stats.count_itemset_calls += len(self._universe)
            state = self._seed_state
        else:
            prefix = ()
            root_candidates = masks
            root_estimates = item_estimates
            state = self.initial_state()
        passing = np.nonzero(
            np.minimum(item_estimates, root_estimates) >= self.threshold
        )[0]
        if passing.size == 0:
            return False
        self._items = [self._universe[i] for i in passing]
        self._masks = np.ascontiguousarray(masks[passing])
        self._extensions = [
            ExtensionItem(self._universe[i], int(item_estimates[i]))
            for i in passing
        ]
        self._root_indices = np.arange(len(self._items), dtype=np.int64)
        self._root_candidates = np.ascontiguousarray(root_candidates[passing])
        self._root_estimates = root_estimates[passing]
        self._prefix = prefix
        self._root_state = state
        return True

    def run(self) -> FilterOutput:
        """Execute the filter and return its output."""
        if not self.prepare():
            return self.output
        return self.run_roots(range(len(self._extensions)))

    def run_roots(self, offsets) -> FilterOutput:
        """Walk only the top-level subtrees at ``offsets``.

        ``offsets`` index into the staged post-pruning extension order
        (the order :meth:`run` visits roots).  Requires a prior
        successful :meth:`prepare`.  Walking every offset in order is
        exactly :meth:`run`; walking a partition of the offsets across
        engines (or processes) and concatenating the outputs in offset
        order reproduces the serial output — each root's subtree only
        ever extends with items *after* it, so subtrees are disjoint.
        """
        for raw in offsets:
            offset = int(raw)
            est = int(self._root_estimates[offset])
            if est < self.threshold:  # pragma: no cover - pruned by prepare()
                continue
            ext = self._extensions[offset]
            itemset = self._prefix + (ext.item,)
            explore, child_state = self.visit(
                itemset, est, self._root_candidates[offset],
                self._root_state, ext,
            )
            too_deep = (
                self.max_size is not None and len(itemset) >= self.max_size
            )
            if explore and not too_deep and offset + 1 < len(self._extensions):
                self._descend(
                    self._root_indices[offset + 1:],
                    self._root_candidates[offset],
                    itemset, child_state,
                )
        return self.output

    #: Cap on the number of candidate rows one batched sibling AND-pass
    #: materialises at once (rows x n_words uint64 words of memory).
    MAX_FRONTIER_ROWS = 1 << 16

    def batch_root_frontier(self, offsets) -> dict:
        """The batched sibling AND-pass over several root subtrees.

        For every root offset ``o`` in ``offsets``, the serial recursion
        would compute ``masks[o+1:] & root_candidates[o]`` plus a
        row-popcount as its first :meth:`_descend`.  This evaluates the
        whole sibling group in **one** broadcast AND and **one**
        row-popcount over the concatenated frontiers — the same values,
        an order of magnitude fewer numpy dispatches when a worker is
        handed a batch of small right-edge subtrees.

        Returns ``{offset: (ext_indices, candidates, estimates)}`` with
        arrays bit-identical to the per-root computation.  Charges no
        statistics; :meth:`_walk` accounts ``count_itemset_calls`` when
        the frontier is walked, exactly as in the serial path.
        """
        offsets = [int(o) for o in offsets]
        n = len(self._extensions)
        counts = [n - o - 1 for o in offsets]
        rows = np.concatenate(
            [self._root_indices[o + 1:] for o in offsets]
        )
        acc_rows = np.repeat(np.asarray(offsets, dtype=np.int64), counts)
        candidates = self._masks[rows] & self._root_candidates[acc_rows]
        estimates = _row_popcount(candidates)
        frontiers, start = {}, 0
        for offset, count in zip(offsets, counts):
            frontiers[offset] = (
                self._root_indices[offset + 1:],
                candidates[start:start + count],
                estimates[start:start + count],
            )
            start += count
        return frontiers

    def run_roots_batched(self, offsets, activate=None) -> FilterOutput:
        """Walk several top-level subtrees with shared sibling AND-passes.

        Equivalent to ``run_roots(offsets)`` subtree-for-subtree: the
        root visits run first (in ``offsets`` order), then the surviving
        roots' depth-2 frontiers are estimated together via
        :meth:`batch_root_frontier` (chunked to bound peak memory), and
        each frontier is walked depth-first in that same order.  Within
        each subtree the visit order — and therefore the per-subtree
        output — is byte-identical to the serial enumeration; callers
        that need the *global* serial order concatenate per-subtree
        outputs in ascending offset, exactly as ``run_roots`` would
        produce them.

        ``activate(offset)`` is invoked before any work attributable to
        that offset; the parallel layer uses it to swap per-subtree
        output shells and meter time/IO at the boundaries.
        """
        if activate is None:
            activate = _noop_activate
        n = len(self._extensions)
        plans: list[tuple[int, tuple, Any]] = []
        for raw in offsets:
            offset = int(raw)
            est = int(self._root_estimates[offset])
            if est < self.threshold:  # pragma: no cover - pruned by prepare()
                continue
            activate(offset)
            ext = self._extensions[offset]
            itemset = self._prefix + (ext.item,)
            explore, child_state = self.visit(
                itemset, est, self._root_candidates[offset],
                self._root_state, ext,
            )
            too_deep = (
                self.max_size is not None and len(itemset) >= self.max_size
            )
            if explore and not too_deep and offset + 1 < n:
                plans.append((offset, itemset, child_state))
        for segment in _segment_by_rows(plans, n, self.MAX_FRONTIER_ROWS):
            frontiers = self.batch_root_frontier([p[0] for p in segment])
            for offset, itemset, child_state in segment:
                activate(offset)
                ext_indices, candidates, estimates = frontiers[offset]
                self._walk(ext_indices, candidates, estimates, itemset,
                           child_state)
        return self.output

    def _descend(self, ext_indices: np.ndarray, acc: np.ndarray, prefix, state):
        """Evaluate all extensions of one node in a single vector pass."""
        candidates = self._masks[ext_indices] & acc
        estimates = _row_popcount(candidates)
        self._walk(ext_indices, candidates, estimates, prefix, state)

    def _walk(self, ext_indices, candidates, estimates, prefix, state):
        stats = self.output.stats
        stats.count_itemset_calls += int(ext_indices.size)
        threshold = self.threshold
        for offset in range(int(ext_indices.size)):
            est = int(estimates[offset])
            if est < threshold:
                continue
            index = int(ext_indices[offset])
            ext = self._extensions[index]
            itemset = prefix + (ext.item,)
            explore, child_state = self.visit(
                itemset, est, candidates[offset], state, ext
            )
            too_deep = self.max_size is not None and len(itemset) >= self.max_size
            if explore and not too_deep and offset + 1 < ext_indices.size:
                self._descend(
                    ext_indices[offset + 1:], candidates[offset],
                    itemset, child_state,
                )


def _noop_activate(offset: int) -> None:
    return None


def _segment_by_rows(plans, n_extensions: int, max_rows: int):
    """Split batched-walk plans so one AND-pass stays under ``max_rows``."""
    segment, rows = [], 0
    for plan in plans:
        frontier = n_extensions - plan[0] - 1
        if segment and rows + frontier > max_rows:
            yield segment
            segment, rows = [], 0
        segment.append(plan)
        rows += frontier
    if segment:
        yield segment


class SingleFilter(FilterEngine):
    """Figure 2: accept every pattern whose BBS estimate clears τ."""

    def visit(self, itemset, est, vector, parent_state, ext):
        """Record the pattern as a candidate and keep exploring."""
        self.output.stats.candidates += 1
        self.output.stats.uncertain += 1
        self.output.candidates.append((frozenset(itemset), est))
        return True, None


@dataclass(frozen=True)
class DualState:
    """Recursion state carried by DualFilter: the (count, flag) pair of
    the pattern being extended plus its BBS estimate (for CheckCount)."""

    count: int
    flag: Certainty
    est: int | None  # None encodes the paper's ``I2 = NULL``


class DualFilter(FilterEngine):
    """Figure 4: partition candidates into guaranteed F and uncertain F'."""

    def __init__(self, bbs, threshold, **kwargs):
        super().__init__(bbs, threshold, **kwargs)
        if self.seed and not isinstance(self._seed_state, DualState):
            raise ConfigurationError(
                "a seeded DualFilter needs a DualState seed_state carrying "
                "the seed pattern's (count, flag, est) — see mine_containing"
            )

    def initial_state(self):
        """The empty pattern: exact (count 0) with the paper's NULL est."""
        return DualState(count=0, flag=Certainty.EXACT, est=None)

    def _classify(self, itemset, est, parent_state, ext) -> tuple[Certainty, int]:
        """Run CheckCount for ``itemset = parent ∪ {ext.item}``."""
        return check_count(
            threshold=self.threshold,
            est_item=ext.root_estimate,
            act_item=self.bbs.item_counts.count(ext.item),
            est_itemset=parent_state.est,
            itemset_count=parent_state.count,
            itemset_flag=parent_state.flag,
            est_union=est,
        )

    def visit(self, itemset, est, vector, parent_state, ext):
        """Classify via CheckCount and partition into F / F' (Figure 4)."""
        stats = self.output.stats
        flag, count = self._classify(itemset, est, parent_state, ext)
        if flag is Certainty.INFREQUENT:
            # Only possible at depth 1: the exact 1-item count refutes
            # a BBS over-estimate, killing the whole subtree.
            stats.pruned_infrequent_item += 1
            return False, parent_state
        stats.candidates += 1
        key = frozenset(itemset)
        if flag is Certainty.EXACT:
            stats.certified_exact += 1
            self.output.certain[key] = PatternCount(count, exact=True)
        elif flag is Certainty.BOUNDED:
            stats.certified_bounded += 1
            self.output.certain[key] = PatternCount(count, exact=False)
        else:
            stats.uncertain += 1
            self.output.candidates.append((key, count))
        return True, DualState(count=count, flag=flag, est=est)
