"""Constraint bit-slices and ad-hoc queries (Sections 3.4 and 4.9).

A *constraint* is a selection predicate over transactions, materialised
as one extra bit-slice: bit ``t`` is set iff transaction ``t`` satisfies
the predicate.  ``CountItemSet`` then simply ANDs the constraint slice
into its resultant vector — the paper's example being *"the number of
occurrences of itemset I for transactions whose TIDs are divisible by
7"*.

:class:`AdHocQueryEngine` packages the paper's two ad-hoc query types:

* **Query 1** — the exact count of an arbitrary (possibly non-frequent)
  pattern: estimate from the BBS, then probe only the flagged tuples;
* **Query 2** — constrained counting, with both the fast estimated
  answer (pure bit operations) and the probed exact answer.

Neither query is answerable from a mined result alone: Apriori must
rescan the database and the FP-tree stores nothing about non-frequent
patterns (Section 4.9 makes exactly this comparison).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

import numpy as np

from repro.core import bitvec
from repro.core.bbs import BBS
from repro.core.refine import probe
from repro.core.results import RefineStats
from repro.errors import DatabaseMismatchError, QueryError


class ConstraintSlice:
    """A materialised selection predicate: one bit per transaction."""

    def __init__(self, words: np.ndarray, n_transactions: int):
        self.words = words
        self.n_transactions = n_transactions

    @classmethod
    def from_positions(cls, positions: Iterable[int], n_transactions: int):
        """Build from the positions of the qualifying transactions."""
        return cls(
            bitvec.pack_indices(positions, max(n_transactions, 1)), n_transactions
        )

    @classmethod
    def from_tid_predicate(cls, database, predicate: Callable[[int], bool]):
        """Build by testing each transaction's TID (e.g. ``tid % 7 == 0``)."""
        qualifying = [
            position
            for position in range(len(database))
            if predicate(database.tid(position))
        ]
        return cls.from_positions(qualifying, len(database))

    @classmethod
    def from_transaction_predicate(
        cls, database, predicate: Callable[[int, tuple], bool]
    ):
        """Build by testing ``(position, itemset)`` for every transaction.

        This performs one accounted scan — constraint construction reads
        the database once, after which the slice answers any number of
        constrained counts by pure bit operations.
        """
        qualifying = [
            position for position, itemset in database.scan()
            if predicate(position, itemset)
        ]
        return cls.from_positions(qualifying, len(database))

    def count(self) -> int:
        """How many transactions satisfy the constraint."""
        return bitvec.popcount(self.words)

    def positions(self) -> np.ndarray:
        """Positions of the qualifying transactions, in order."""
        return bitvec.indices_of_set_bits(self.words, self.n_transactions)

    def __and__(self, other: "ConstraintSlice") -> "ConstraintSlice":
        if self.n_transactions != other.n_transactions:
            raise QueryError("cannot AND constraints over different databases")
        return ConstraintSlice(self.words & other.words, self.n_transactions)

    def __or__(self, other: "ConstraintSlice") -> "ConstraintSlice":
        if self.n_transactions != other.n_transactions:
            raise QueryError("cannot OR constraints over different databases")
        return ConstraintSlice(self.words | other.words, self.n_transactions)

    def __invert__(self) -> "ConstraintSlice":
        inverted = (~self.words) & bitvec.ones(self.n_transactions)
        return ConstraintSlice(inverted, self.n_transactions)


class AdHocQueryEngine:
    """Answer pattern-count queries, constrained or not, via the BBS."""

    def __init__(self, database, bbs: BBS):
        if bbs.n_transactions != len(database):
            raise DatabaseMismatchError(
                f"index covers {bbs.n_transactions} transactions, "
                f"database has {len(database)}"
            )
        self.database = database
        self.bbs = bbs
        self.refine_stats = RefineStats()

    # -- Query 1: arbitrary pattern counts -------------------------------------

    def estimated_count(self, itemset: Iterable) -> int:
        """The BBS upper-bound count (no database access)."""
        return self.bbs.count_itemset(self._normalise(itemset))

    def exact_count(self, itemset: Iterable) -> int:
        """The exact count: BBS estimate, then probe the flagged tuples.

        Works for *any* pattern, frequent or not — the capability the
        baselines lack (Section 4.9's Query 1).
        """
        key = self._normalise(itemset)
        positions = self.bbs.candidate_positions(key)
        return probe(self.database, key, positions, stats=self.refine_stats)

    # -- Query 2: constrained counts ---------------------------------------------

    def estimated_count_where(
        self, itemset: Iterable, constraint: ConstraintSlice
    ) -> int:
        """Constrained upper-bound count (pure bit operations)."""
        key = self._normalise(itemset)
        self._check_constraint(constraint)
        return self.bbs.count_with_constraint(key, constraint.words)

    def exact_count_where(
        self, itemset: Iterable, constraint: ConstraintSlice
    ) -> int:
        """Constrained exact count: probe only tuples passing both filters."""
        key = self._normalise(itemset)
        self._check_constraint(constraint)
        vector = self.bbs.resultant_vector(key) & constraint.words
        positions = bitvec.indices_of_set_bits(vector, self.bbs.n_transactions)
        return probe(self.database, key, positions, stats=self.refine_stats)

    # -- helpers ---------------------------------------------------------------------

    @staticmethod
    def _normalise(itemset: Iterable) -> frozenset:
        key = frozenset(itemset)
        if not key:
            raise QueryError("ad-hoc queries need a non-empty itemset")
        return key

    def _check_constraint(self, constraint: ConstraintSlice) -> None:
        if constraint.n_transactions != self.bbs.n_transactions:
            raise QueryError(
                f"constraint covers {constraint.n_transactions} transactions, "
                f"index covers {self.bbs.n_transactions}"
            )
