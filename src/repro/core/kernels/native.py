"""The native C kernel backend: compiled on first use, loaded via ctypes.

The container toolchain bakes in a C compiler but no numba/Cython, so
the native path is a ~100-line C translation unit embedded below,
compiled once into a cached shared object (keyed by a hash of the
source, so editing the kernels invalidates the cache) and bound with
:mod:`ctypes`.  Everything about the build is best-effort: no compiler,
a failed compile, or a failed ``dlopen`` all make :func:`load` return
``None`` and the caller falls back to the numpy backend.

The C kernels mirror the numpy semantics exactly — little-endian bit
order within each 64-bit word, ascending index output, ``limit``
truncation — and are fuzzed against numpy for bit-identical outputs in
``tests/test_kernels.py``.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path

import numpy as np

_C_SOURCE = r"""
#include <stdint.h>
#include <stddef.h>

/* Total set bits over a packed word array. */
uint64_t repro_popcount(const uint64_t *words, size_t n) {
    uint64_t total = 0;
    for (size_t i = 0; i < n; i++)
        total += (uint64_t)__builtin_popcountll(words[i]);
    return total;
}

/* Set-bit count per row of a C-contiguous (rows x cols) matrix. */
void repro_row_popcount(const uint64_t *matrix, size_t rows, size_t cols,
                        int64_t *out) {
    for (size_t r = 0; r < rows; r++) {
        const uint64_t *row = matrix + r * cols;
        uint64_t total = 0;
        for (size_t c = 0; c < cols; c++)
            total += (uint64_t)__builtin_popcountll(row[c]);
        out[r] = (int64_t)total;
    }
}

/* AND a (rows x cols) stack into out[cols]; rows >= 1. */
void repro_and_reduce(const uint64_t *matrix, size_t rows, size_t cols,
                      uint64_t *out) {
    for (size_t c = 0; c < cols; c++)
        out[c] = matrix[c];
    for (size_t r = 1; r < rows; r++) {
        const uint64_t *row = matrix + r * cols;
        for (size_t c = 0; c < cols; c++)
            out[c] &= row[c];
    }
}

/* Ascending indices of set bits; limit < 0 means no limit.  Returns the
 * number of indices written; out must hold popcount(words) entries. */
int64_t repro_indices_of_set_bits(const uint64_t *words, size_t n,
                                  int64_t limit, int64_t *out) {
    int64_t count = 0;
    for (size_t w = 0; w < n; w++) {
        uint64_t word = words[w];
        int64_t base = (int64_t)(w * 64);
        if (limit >= 0 && base >= limit)
            break;
        while (word) {
            int64_t idx = base + __builtin_ctzll(word);
            if (limit >= 0 && idx >= limit)
                return count;
            out[count++] = idx;
            word &= word - 1;
        }
    }
    return count;
}

/* Set bits at the given (pre-validated) positions; words is pre-zeroed. */
void repro_pack_indices(const int64_t *indices, size_t n, uint64_t *words) {
    for (size_t i = 0; i < n; i++) {
        int64_t idx = indices[i];
        words[idx >> 6] |= (uint64_t)1 << (idx & 63);
    }
}

/* Expand the first n_bits bits into a 0/1 byte array. */
void repro_unpack_bits(const uint64_t *words, size_t n_bits, uint8_t *out) {
    for (size_t i = 0; i < n_bits; i++)
        out[i] = (uint8_t)((words[i >> 6] >> (i & 63)) & 1u);
}
"""

_P_U64 = ctypes.POINTER(ctypes.c_uint64)
_P_I64 = ctypes.POINTER(ctypes.c_int64)
_P_U8 = ctypes.POINTER(ctypes.c_uint8)

#: Memoised load() result: unset, or (lib | None).
_LOADED: list = []


def _cache_dir() -> Path:
    root = os.environ.get("XDG_CACHE_HOME")
    base = Path(root) if root else Path.home() / ".cache"
    return base / "repro-kernels"


def _find_compiler() -> str | None:
    for candidate in (os.environ.get("CC"), "cc", "gcc", "clang"):
        if candidate and shutil.which(candidate):
            return candidate
    return None


def _cached_library_path() -> Path:
    digest = hashlib.sha256(_C_SOURCE.encode()).hexdigest()[:16]
    return _cache_dir() / f"repro_kernels_{digest}.so"


def has_cached_build() -> bool:
    """Whether a compiled library for *this* C source is already cached.

    A pure path check — no compiler probe, no compilation — so callers
    (backend selection with no explicit knob) can prefer the native
    backend only when loading it is a cheap ``dlopen``, never a
    surprise compile.  The digest in the file name ties the answer to
    the exact embedded source: editing the C invalidates the cache.
    """
    return _cached_library_path().exists()


def _build_library() -> Path | None:
    """Compile the embedded C source into a cached shared object."""
    target = _cached_library_path()
    if target.exists():
        return target
    compiler = _find_compiler()
    if compiler is None:
        return None
    try:
        target.parent.mkdir(parents=True, exist_ok=True)
        with tempfile.TemporaryDirectory(dir=target.parent) as tmp:
            source = Path(tmp) / "repro_kernels.c"
            source.write_text(_C_SOURCE)
            built = Path(tmp) / "repro_kernels.so"
            subprocess.run(
                [compiler, "-O3", "-shared", "-fPIC",
                 "-o", str(built), str(source)],
                check=True,
                capture_output=True,
                timeout=120,
            )
            # Atomic publish: concurrent builders race benignly.
            os.replace(built, target)
    except (OSError, subprocess.SubprocessError):
        return None
    return target


def _bind(lib: ctypes.CDLL) -> ctypes.CDLL:
    lib.repro_popcount.argtypes = [_P_U64, ctypes.c_size_t]
    lib.repro_popcount.restype = ctypes.c_uint64
    lib.repro_row_popcount.argtypes = [
        _P_U64, ctypes.c_size_t, ctypes.c_size_t, _P_I64,
    ]
    lib.repro_row_popcount.restype = None
    lib.repro_and_reduce.argtypes = [
        _P_U64, ctypes.c_size_t, ctypes.c_size_t, _P_U64,
    ]
    lib.repro_and_reduce.restype = None
    lib.repro_indices_of_set_bits.argtypes = [
        _P_U64, ctypes.c_size_t, ctypes.c_int64, _P_I64,
    ]
    lib.repro_indices_of_set_bits.restype = ctypes.c_int64
    lib.repro_pack_indices.argtypes = [_P_I64, ctypes.c_size_t, _P_U64]
    lib.repro_pack_indices.restype = None
    lib.repro_unpack_bits.argtypes = [_P_U64, ctypes.c_size_t, _P_U8]
    lib.repro_unpack_bits.restype = None
    return lib


def load() -> "NativeKernels | None":
    """The native backend instance, or ``None`` when it cannot be built."""
    if not _LOADED:
        path = _build_library()
        lib = None
        if path is not None:
            try:
                lib = _bind(ctypes.CDLL(str(path)))
            except OSError:
                lib = None
        _LOADED.append(NativeKernels(lib) if lib is not None else None)
    return _LOADED[0]


def _u64_ptr(array: np.ndarray) -> "ctypes._Pointer":
    return array.ctypes.data_as(_P_U64)


class NativeKernels:
    """ctypes bindings over the compiled kernel library."""

    name = "native"

    def __init__(self, lib: ctypes.CDLL):
        self._lib = lib

    def popcount(self, words: np.ndarray) -> int:
        words = np.ascontiguousarray(words)
        return int(self._lib.repro_popcount(_u64_ptr(words), words.size))

    def row_popcount(self, matrix: np.ndarray) -> np.ndarray:
        matrix = np.ascontiguousarray(matrix)
        out = np.empty(matrix.shape[0], dtype=np.int64)
        self._lib.repro_row_popcount(
            _u64_ptr(matrix), matrix.shape[0], matrix.shape[1],
            out.ctypes.data_as(_P_I64),
        )
        return out

    def and_reduce(self, rows: np.ndarray) -> np.ndarray:
        rows = np.ascontiguousarray(rows)
        out = np.empty(rows.shape[1], dtype=np.uint64)
        self._lib.repro_and_reduce(
            _u64_ptr(rows), rows.shape[0], rows.shape[1], _u64_ptr(out)
        )
        return out

    def indices_of_set_bits(
        self, words: np.ndarray, limit: int | None = None
    ) -> np.ndarray:
        words = np.ascontiguousarray(words)
        capacity = int(self._lib.repro_popcount(_u64_ptr(words), words.size))
        out = np.empty(capacity, dtype=np.int64)
        if capacity == 0:
            return out
        count = int(
            self._lib.repro_indices_of_set_bits(
                _u64_ptr(words), words.size,
                -1 if limit is None else int(limit),
                out.ctypes.data_as(_P_I64),
            )
        )
        return out if count == capacity else out[:count].copy()

    def pack_indices(self, indices: np.ndarray, n_words: int) -> np.ndarray:
        words = np.zeros(n_words, dtype=np.uint64)
        if indices.size:
            indices = np.ascontiguousarray(indices, dtype=np.int64)
            self._lib.repro_pack_indices(
                indices.ctypes.data_as(_P_I64), indices.size, _u64_ptr(words)
            )
        return words

    def unpack_bits(self, words: np.ndarray, n_bits: int) -> np.ndarray:
        # Mirrors the numpy backend's `unpackbits(...)[:n_bits]`: the
        # result is silently truncated to the packed capacity.
        words = np.ascontiguousarray(words)
        n_out = min(n_bits, words.size * 64)
        out = np.empty(n_out, dtype=np.uint8)
        if n_out:
            self._lib.repro_unpack_bits(
                _u64_ptr(words), n_out, out.ctypes.data_as(_P_U8)
            )
        return out
