"""Pluggable backends for the packed bit-vector kernels.

The hot loops of every filter pass — ``popcount``, ``and_reduce``,
row-wise popcount, ``indices_of_set_bits``, ``pack_indices`` /
``unpack_bits`` — are exposed behind a tiny backend protocol so the
same :mod:`repro.core.bitvec` API can run on:

* ``numpy`` — the portable default: vectorised numpy (with the 8-bit
  lookup-table fallback for numpy < 2.0);
* ``native`` — a small C kernel library compiled on first use with the
  system C compiler and loaded through :mod:`ctypes`
  (``__builtin_popcountll`` / ``__builtin_ctzll`` loops, no Python or
  numpy dispatch overhead per call).

Selection happens once at import of :mod:`repro.core.bitvec`, driven by
the ``REPRO_KERNEL`` environment variable:

===========  ==============================================================
value        behaviour
===========  ==============================================================
unset        ``native`` when a compiled build is already cached (loading
             it is a cheap ``dlopen``; a RuntimeWarning if it then fails
             to load), otherwise ``numpy`` — never a surprise compile
``numpy``    force the numpy backend
``native``   the C backend; falls back to numpy **with a RuntimeWarning**
             when no compiler is available or the build fails
``auto``     ``native`` when it loads, silently ``numpy`` otherwise
===========  ==============================================================

Every backend is bit-identical by construction and by test
(``tests/test_kernels.py`` fuzzes numpy vs native on every kernel).
Fallback is always *graceful*: an unknown value or a failed native
build selects numpy and warns; imports never fail because of the knob.
"""

from __future__ import annotations

import os
import warnings

from repro.core.kernels.numpy_backend import NumpyKernels

#: Environment knob read at import of :mod:`repro.core.bitvec`.
KERNEL_ENV = "REPRO_KERNEL"

#: Accepted knob values (``auto`` resolves to one of the other two).
BACKEND_NAMES = ("numpy", "native", "auto")


def native_available() -> bool:
    """Whether the native C backend can be (or already was) loaded."""
    from repro.core.kernels import native

    return native.load() is not None


def load_backend(name: str | None = None, *, strict: bool = False):
    """Resolve a kernel backend instance from ``name`` or ``REPRO_KERNEL``.

    ``strict=True`` raises :class:`~repro.errors.ConfigurationError` on an
    unknown name or an unavailable native backend; the default warns and
    falls back to numpy so library import never fails on a typoed knob.
    """
    from repro.errors import ConfigurationError

    requested = name if name is not None else os.environ.get(KERNEL_ENV)
    if requested is None or not requested.strip():
        # No explicit choice: prefer the native backend when a compiled
        # build is already cached (loading it is just a dlopen — the
        # one-time compile was paid by an earlier REPRO_KERNEL=native or
        # auto run).  Never compile implicitly, and warn if a cached
        # build unexpectedly fails to load.
        from repro.core.kernels import native

        if native.has_cached_build():
            backend = native.load()
            if backend is not None:
                return backend
            warnings.warn(
                "a cached native kernel build exists but failed to load; "
                "using the numpy backend",
                RuntimeWarning,
                stacklevel=2,
            )
        return NumpyKernels()
    requested = requested.strip().lower()
    if requested not in BACKEND_NAMES:
        message = (
            f"unknown kernel backend {requested!r} "
            f"(expected one of {BACKEND_NAMES}); using numpy"
        )
        if strict:
            raise ConfigurationError(message)
        warnings.warn(message, RuntimeWarning, stacklevel=2)
        return NumpyKernels()
    if requested == "numpy":
        return NumpyKernels()
    from repro.core.kernels import native

    backend = native.load()
    if backend is not None:
        return backend
    if requested == "native":
        message = (
            "REPRO_KERNEL=native requested but the native kernel library "
            "could not be built (no C compiler, or compilation failed); "
            "falling back to the numpy backend"
        )
        if strict:
            raise ConfigurationError(message)
        warnings.warn(message, RuntimeWarning, stacklevel=2)
    return NumpyKernels()


__all__ = [
    "BACKEND_NAMES",
    "KERNEL_ENV",
    "NumpyKernels",
    "load_backend",
    "native_available",
]
