"""The reference numpy kernel backend.

These are the vectorised implementations that previously lived inline
in :mod:`repro.core.bitvec`; they define the semantics every other
backend must reproduce bit-for-bit.  The public :mod:`repro.core.bitvec`
functions handle argument validation and trivial edge cases (empty
arrays, single rows) before dispatching here, so backends may assume
non-empty, C-contiguous-compatible inputs.
"""

from __future__ import annotations

import numpy as np

WORD_BITS = 64

# numpy >= 2.0 ships a native popcount ufunc.  Older versions fall back
# to an 8-bit lookup table over the byte view, which is still vectorised.
_HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")
_BYTE_POPCOUNT = np.array(
    [bin(i).count("1") for i in range(256)], dtype=np.uint8
)

#: Above this fraction of non-zero words, expanding the whole vector
#: with one ``unpackbits`` beats per-word extraction.
_SPARSE_WORD_FRACTION = 0.25


class NumpyKernels:
    """Vectorised numpy implementations of the bit-vector kernels."""

    name = "numpy"

    @staticmethod
    def popcount(words: np.ndarray) -> int:
        if _HAS_BITWISE_COUNT:
            return int(np.bitwise_count(words).sum())
        return int(_BYTE_POPCOUNT[words.view(np.uint8)].sum())

    @staticmethod
    def row_popcount(matrix: np.ndarray) -> np.ndarray:
        if _HAS_BITWISE_COUNT:
            return np.bitwise_count(matrix).sum(axis=1, dtype=np.int64)
        as_bytes = matrix.view(np.uint8).reshape(matrix.shape[0], -1)
        return _BYTE_POPCOUNT[as_bytes].sum(axis=1, dtype=np.int64)

    @staticmethod
    def and_reduce(rows: np.ndarray) -> np.ndarray:
        return np.bitwise_and.reduce(rows, axis=0)

    @staticmethod
    def indices_of_set_bits(
        words: np.ndarray, limit: int | None = None
    ) -> np.ndarray:
        nonzero_words = np.nonzero(words)[0]
        if nonzero_words.size == 0:
            return np.empty(0, dtype=np.int64)
        if nonzero_words.size >= words.size * _SPARSE_WORD_FRACTION:
            dense = np.ascontiguousarray(words)
            bits = np.unpackbits(dense.view(np.uint8), bitorder="little")
            idx = np.nonzero(bits)[0].astype(np.int64)
        else:
            packed = np.ascontiguousarray(words[nonzero_words])
            bits = np.unpackbits(packed.view(np.uint8), bitorder="little")
            rows, cols = np.nonzero(bits.reshape(nonzero_words.size, WORD_BITS))
            idx = nonzero_words[rows] * WORD_BITS + cols
        if limit is not None:
            idx = idx[idx < limit]
        return idx

    @staticmethod
    def pack_indices(indices: np.ndarray, n_words: int) -> np.ndarray:
        bits = np.zeros(n_words * WORD_BITS, dtype=np.uint8)
        bits[indices] = 1
        return np.packbits(bits, bitorder="little").view(np.uint64).copy()

    @staticmethod
    def unpack_bits(words: np.ndarray, n_bits: int) -> np.ndarray:
        bits = np.unpackbits(words.view(np.uint8), bitorder="little")
        return bits[:n_bits]
