"""Packed bit-vector primitives backing the BBS index.

A BBS stores *m* bit-slices, each one bit per transaction.  Rather than a
Python-level bit-at-a-time representation (hopelessly slow), every slice
is packed 64 bits per :class:`numpy.uint64` word.  This module collects
the low-level kernels used throughout the library:

* :func:`popcount` -- number of set bits in a word array,
* :func:`row_popcount` -- set bits per row of a candidate batch,
* :func:`and_reduce` -- AND a set of slices together,
* :func:`set_bit` / :func:`get_bit` -- single-bit access,
* :func:`indices_of_set_bits` -- expand a packed vector into transaction
  indices (used by the Probe refinement),
* :func:`pack_indices` / :func:`unpack_bits` -- conversions used by
  constraint slices and the persistent slice-file format.

All functions operate on little-endian *bit* order within a word: bit
``i`` of the logical vector lives in word ``i // 64`` at bit position
``i % 64``.  The tail bits of the last word beyond the logical length
are kept at zero by every mutator in this library, so reductions never
need an explicit tail mask.

The hot kernels dispatch through a pluggable backend selected once at
import by the ``REPRO_KERNEL`` environment variable (see
:mod:`repro.core.kernels`): ``numpy`` (the reference), ``native`` (a
small C library compiled on first use), or ``auto``.  Backends are
bit-identical by test; :func:`set_kernel_backend` reselects at runtime
(used by the CLI ``--kernel`` flag).
"""

from __future__ import annotations

import numpy as np

from repro.core import kernels as _kernels
from repro.core.kernels.numpy_backend import (  # noqa: F401  (compat re-exports)
    _BYTE_POPCOUNT,
    _HAS_BITWISE_COUNT,
    _SPARSE_WORD_FRACTION,
)

WORD_BITS = 64
_WORD_DTYPE = np.uint64

#: The active kernel backend (module-global so a swap is process-wide).
_K = _kernels.load_backend()


def active_kernel_backend() -> str:
    """Name of the kernel backend currently in use (``numpy``/``native``)."""
    return _K.name


def set_kernel_backend(name: str | None = None, *, strict: bool = False) -> str:
    """Reselect the kernel backend; returns the name actually loaded.

    ``name=None`` re-reads ``REPRO_KERNEL``.  With ``strict=True`` an
    unknown name or an unavailable native backend raises
    :class:`~repro.errors.ConfigurationError` instead of warning and
    falling back to numpy.
    """
    global _K
    _K = _kernels.load_backend(name, strict=strict)
    return _K.name


def words_for_bits(n_bits: int) -> int:
    """Number of 64-bit words needed to hold ``n_bits`` logical bits."""
    if n_bits < 0:
        raise ValueError(f"bit count must be non-negative, got {n_bits}")
    return (n_bits + WORD_BITS - 1) // WORD_BITS


def zeros(n_bits: int) -> np.ndarray:
    """A packed all-zero vector with capacity for ``n_bits`` bits."""
    return np.zeros(words_for_bits(n_bits), dtype=_WORD_DTYPE)


def ones(n_bits: int) -> np.ndarray:
    """A packed vector with the first ``n_bits`` bits set and the tail clear."""
    out = np.full(words_for_bits(n_bits), ~np.uint64(0), dtype=_WORD_DTYPE)
    tail = n_bits % WORD_BITS
    if tail and out.size:
        out[-1] = np.uint64((1 << tail) - 1)
    return out


def popcount(words: np.ndarray) -> int:
    """Total number of set bits across a packed word array."""
    if words.size == 0:
        return 0
    return _K.popcount(words)


def row_popcount(matrix: np.ndarray) -> np.ndarray:
    """Set-bit count per row of a 2-D uint64 matrix (one candidate batch)."""
    if matrix.shape[0] == 0 or matrix.shape[1] == 0:
        return np.zeros(matrix.shape[0], dtype=np.int64)
    return _K.row_popcount(matrix)


def and_reduce(rows: np.ndarray) -> np.ndarray:
    """AND a stack of packed vectors (2-D, one row per slice) into one row.

    An empty stack would have no defined width, so callers must pass at
    least one row; the filters guarantee this because every itemset sets
    at least one signature bit.
    """
    if rows.ndim != 2:
        raise ValueError(f"expected a 2-D row stack, got ndim={rows.ndim}")
    if rows.shape[0] == 0:
        raise ValueError("cannot AND-reduce an empty stack of slices")
    if rows.shape[0] == 1:
        return rows[0].copy()
    return _K.and_reduce(rows)


def set_bit(words: np.ndarray, index: int) -> None:
    """Set logical bit ``index`` in a packed vector, in place."""
    words[index // WORD_BITS] |= np.uint64(1 << (index % WORD_BITS))


def clear_bit(words: np.ndarray, index: int) -> None:
    """Clear logical bit ``index`` in a packed vector, in place."""
    words[index // WORD_BITS] &= np.uint64(
        ~(1 << (index % WORD_BITS)) & 0xFFFFFFFFFFFFFFFF
    )


def get_bit(words: np.ndarray, index: int) -> bool:
    """Whether logical bit ``index`` of a packed vector is set."""
    word = int(words[index // WORD_BITS])
    return bool((word >> (index % WORD_BITS)) & 1)


def indices_of_set_bits(words: np.ndarray, limit: int | None = None) -> np.ndarray:
    """Transaction indices whose bits are set, in increasing order.

    ``limit`` truncates the logical length: indices ``>= limit`` are
    dropped (used when a packed vector has spare capacity beyond the
    current number of transactions).

    The resultant vector of a selective pattern is overwhelmingly zero
    words; the numpy backend first locates the non-zero words and, when
    they are a small fraction of the vector, unpacks only those words
    instead of materialising the full 8x expansion of the packed array.
    The native backend walks set bits directly with ``ctz``.
    """
    if words.size == 0:
        return np.empty(0, dtype=np.int64)
    return _K.indices_of_set_bits(words, limit)


def pack_indices(indices, n_bits: int) -> np.ndarray:
    """Build a packed vector of logical length ``n_bits`` from set positions."""
    arr = np.asarray(list(indices) if not isinstance(indices, np.ndarray) else indices,
                     dtype=np.int64)
    if arr.size and (arr.min() < 0 or arr.max() >= n_bits):
        raise IndexError(
            f"bit index out of range: indices span "
            f"[{arr.min()}, {arr.max()}] but length is {n_bits}"
        )
    return _K.pack_indices(arr, words_for_bits(n_bits))


def unpack_bits(words: np.ndarray, n_bits: int) -> np.ndarray:
    """Expand a packed vector into a ``uint8`` 0/1 array of length ``n_bits``."""
    if words.size == 0:
        return np.zeros(n_bits, dtype=np.uint8)
    return _K.unpack_bits(words, n_bits)


def to_bitstring(words: np.ndarray, n_bits: int) -> str:
    """Render the first ``n_bits`` bits as a ``'0'``/``'1'`` string.

    Bit 0 is the leftmost character, matching the paper's tables where
    the first transaction / first hash value occupies the first column.
    """
    return "".join("1" if b else "0" for b in unpack_bits(words, n_bits))


def from_bitstring(text: str) -> np.ndarray:
    """Parse a ``'0'``/``'1'`` string (bit 0 first) into a packed vector."""
    cleaned = text.strip()
    if cleaned and set(cleaned) - {"0", "1"}:
        raise ValueError(f"bitstring may only contain 0/1, got {text!r}")
    return pack_indices(
        [i for i, ch in enumerate(cleaned) if ch == "1"], max(len(cleaned), 1)
    )
