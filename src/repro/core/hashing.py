"""Bloom-filter hash family used to form transaction signatures.

The paper (Section 4) derives the ``k`` hash values of an item from its
MD5 digest: *"we take the four disjoint groups of bits from the 128-bit
MD5 signature of the item name; if more bits are needed, we calculate
the MD5 signature of the item name concatenated with itself"*.  This
module reproduces that construction exactly:

* hash ``j`` of an item uses the ``j``-th disjoint 32-bit group, reading
  groups big-endian from ``md5(name)``, then ``md5(name + name)``,
  ``md5(name + name + name)``, ... as more groups are required;
* each 32-bit group is reduced modulo ``m`` to a bit position.

Because mining touches the same items millions of times, the family
memoises the position tuple per item.  The cache is an ordinary dict
keyed by the item's canonical string form, so arbitrary hashable items
(ints, strings) are supported.

The running example of the paper (a single hash ``h(x) = x mod 8``) is
available as :class:`ModuloHashFamily` for tests and documentation.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.errors import ConfigurationError

_GROUP_BYTES = 4
_GROUPS_PER_DIGEST = 16 // _GROUP_BYTES  # an MD5 digest yields 4 groups


class HashFamily:
    """Interface: map an item to ``k`` bit positions in ``[0, m)``.

    Subclasses implement :meth:`_raw_positions`; the base class handles
    validation, caching, and the deduplicated numpy form used by the
    bit-slice kernels.  Families whose per-item weight is not exactly
    ``k`` (e.g. classical superimposed coding) set ``fixed_arity``
    to False, relaxing the arity check to "at least one position".
    """

    fixed_arity = True

    def __init__(self, m: int, k: int):
        if m < 1:
            raise ConfigurationError(f"signature width m must be >= 1, got {m}")
        if k < 1:
            raise ConfigurationError(f"hash count k must be >= 1, got {k}")
        self.m = m
        self.k = k
        self._cache: dict[str, np.ndarray] = {}

    # -- public API ----------------------------------------------------

    def positions(self, item) -> np.ndarray:
        """Sorted, deduplicated bit positions for ``item`` (read-only array).

        Distinct hash functions may collide on the same position; the
        signature semantics (set the bit) make duplicates redundant, so
        they are removed here once instead of in every AND-reduce.
        """
        key = self._canonical(item)
        cached = self._cache.get(key)
        if cached is None:
            raw = self._raw_positions(key)
            if self.fixed_arity and len(raw) != self.k:
                raise ConfigurationError(
                    f"hash family produced {len(raw)} positions, expected k={self.k}"
                )
            if not raw:
                raise ConfigurationError(
                    "hash family produced no positions for an item"
                )
            for pos in raw:
                if not 0 <= pos < self.m:
                    raise ConfigurationError(
                        f"hash position {pos} outside [0, {self.m})"
                    )
            cached = np.unique(np.asarray(raw, dtype=np.int64))
            cached.setflags(write=False)
            self._cache[key] = cached
        return cached

    def itemset_positions(self, items) -> np.ndarray:
        """Union of the positions of every item in ``items`` (sorted)."""
        arrays = [self.positions(item) for item in items]
        if not arrays:
            return np.empty(0, dtype=np.int64)
        if len(arrays) == 1:
            return arrays[0]
        merged = np.unique(np.concatenate(arrays))
        merged.setflags(write=False)
        return merged

    def clear_cache(self) -> None:
        """Drop the memoised positions (mostly for memory-bound tests)."""
        self._cache.clear()

    # -- subclass hooks --------------------------------------------------

    @staticmethod
    def _canonical(item) -> str:
        """Canonical string form of an item; the unit hashed by MD5."""
        return item if isinstance(item, str) else repr(item)

    def _raw_positions(self, key: str) -> list[int]:
        raise NotImplementedError

    # -- descriptor used by the persistent slice-file header -------------

    def describe(self) -> dict:
        """A JSON-able description sufficient to rebuild the family."""
        return {"kind": type(self).__name__, "m": self.m, "k": self.k}


class MD5HashFamily(HashFamily):
    """The paper's MD5-group construction (Section 4)."""

    def _raw_positions(self, key: str) -> list[int]:
        positions: list[int] = []
        repeat = 1
        digest = b""
        group = _GROUPS_PER_DIGEST  # force a digest on first iteration
        while len(positions) < self.k:
            if group >= _GROUPS_PER_DIGEST:
                digest = hashlib.md5((key * repeat).encode("utf-8")).digest()
                repeat += 1
                group = 0
            start = group * _GROUP_BYTES
            value = int.from_bytes(digest[start:start + _GROUP_BYTES], "big")
            positions.append(value % self.m)
            group += 1
        return positions


class ModuloHashFamily(HashFamily):
    """Single hash ``h(x) = x mod m`` from the paper's running example.

    Only meaningful for integer items; kept deliberately simple because
    its role is to reproduce Tables 1-2 verbatim in tests and docs.
    """

    def __init__(self, m: int):
        super().__init__(m, k=1)

    @staticmethod
    def _canonical(item) -> str:
        return str(int(item))

    def _raw_positions(self, key: str) -> list[int]:
        return [int(key) % self.m]


class SuperimposedHashFamily(HashFamily):
    """The classical signature-file coding the paper contrasts with Bloom.

    Footnote 3 of the paper: *"An alternative method ... employed by the
    signature file method, is to hash each item into an m-bit vector and
    superimpose (inclusive-OR) all the vectors ... The bloom filter
    approach is preferred here because it allows us to control the
    number of bits to be set."*

    Hashing an item straight into an m-bit vector sets a *random* number
    of bits: here the realised weight is (approximately Poisson)
    distributed with mean ``k`` instead of being exactly ``k``.  Items
    that land a light vector filter poorly; items that land a heavy one
    densify every signature they touch.  Exposing this family lets the
    ablation benchmark quantify exactly the control the paper's Bloom
    construction buys.
    """

    fixed_arity = False

    def _raw_positions(self, key: str) -> list[int]:
        stream = _DigestStream(key)
        weight = max(1, _poisson_quantile(stream.next_unit(), self.k))
        return [stream.next_int() % self.m for _ in range(weight)]


class _DigestStream:
    """An endless stream of 32-bit values derived from chained MD5."""

    def __init__(self, key: str):
        self._key = key
        self._counter = 0
        self._digest = b""
        self._cursor = _GROUPS_PER_DIGEST

    def next_int(self) -> int:
        """The next 32-bit value of the stream."""
        if self._cursor >= _GROUPS_PER_DIGEST:
            seed = f"{self._key}#{self._counter}".encode("utf-8")
            self._digest = hashlib.md5(seed).digest()
            self._counter += 1
            self._cursor = 0
        start = self._cursor * _GROUP_BYTES
        self._cursor += 1
        return int.from_bytes(self._digest[start:start + _GROUP_BYTES], "big")

    def next_unit(self) -> float:
        """The next value scaled into [0, 1)."""
        return self.next_int() / 2**32


def _poisson_quantile(u: float, mean: float) -> int:
    """Smallest n with PoissonCDF(n; mean) >= u (inverse-CDF sampling)."""
    import math

    probability = math.exp(-mean)
    cumulative = probability
    n = 0
    while cumulative < u and n < 16 * int(mean + 1):
        n += 1
        probability *= mean / n
        cumulative += probability
    return n


_FAMILIES = {
    "MD5HashFamily": MD5HashFamily,
    "ModuloHashFamily": ModuloHashFamily,
    "SuperimposedHashFamily": SuperimposedHashFamily,
}


def family_from_description(desc: dict) -> HashFamily:
    """Rebuild a hash family from :meth:`HashFamily.describe` output."""
    try:
        kind = desc["kind"]
        cls = _FAMILIES[kind]
    except KeyError as exc:
        raise ConfigurationError(f"unknown hash family description: {desc!r}") from exc
    if cls is ModuloHashFamily:
        return ModuloHashFamily(int(desc["m"]))
    return cls(int(desc["m"]), int(desc["k"]))
