"""Result and statistics types returned by the mining algorithms.

Every miner — the four BBS schemes and both baselines — returns a
:class:`MiningResult` so that benchmarks and tests can treat them
uniformly.  Counts carry an ``exact`` bit because the paper's DualFilter
may certify a pattern as frequent while only knowing an upper-bound
count (``flag = 2`` in Figure 3); downstream code must be able to tell
the difference.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.storage.metrics import IOStats


@dataclass(frozen=True)
class PatternCount:
    """Support of one frequent pattern.

    ``exact`` is True when ``count`` is the true database support and
    False when it is a BBS estimate (always an upper bound, Lemma 4).
    """

    count: int
    exact: bool = True


@dataclass
class FilterStats:
    """Work performed by the filtering phase."""

    count_itemset_calls: int = 0
    candidates: int = 0          # itemsets that passed the BBS threshold
    certified_exact: int = 0     # flag = 1: guaranteed frequent, exact count
    certified_bounded: int = 0   # flag = 2: guaranteed frequent, estimated count
    uncertain: int = 0           # flag = 0: needs refinement
    pruned_infrequent_item: int = 0  # flag = -1 at the top level (DualFilter)
    post_pruned: int = 0         # adaptive phase 3: re-estimation prunes

    @property
    def certified(self) -> int:
        """Patterns accepted without any database access."""
        return self.certified_exact + self.certified_bounded


@dataclass
class RefineStats:
    """Work performed by the refinement phase."""

    probes: int = 0              # candidate patterns verified by probing
    probed_tuples: int = 0       # transactions fetched by Probe
    scans: int = 0               # full database scans (SequentialScan)
    false_drops: int = 0         # candidates refuted by refinement
    verified: int = 0            # candidates confirmed by refinement


@dataclass
class MiningResult:
    """Frequent patterns plus the bookkeeping the paper's evaluation reports."""

    algorithm: str
    min_support: int
    n_transactions: int
    patterns: dict[frozenset, PatternCount] = field(default_factory=dict)
    filter_stats: FilterStats = field(default_factory=FilterStats)
    refine_stats: RefineStats = field(default_factory=RefineStats)
    io: IOStats = field(default_factory=IOStats)
    elapsed_seconds: float = 0.0

    def itemsets(self) -> set[frozenset]:
        """The set of frequent itemsets found."""
        return set(self.patterns)

    def count(self, itemset) -> int:
        """Reported support of ``itemset`` (KeyError if not frequent)."""
        return self.patterns[frozenset(itemset)].count

    def __len__(self) -> int:
        return len(self.patterns)

    @property
    def false_drop_ratio(self) -> float:
        """The paper's FDR: false drops over actual frequent patterns.

        Defined as 0 when no frequent pattern exists (instead of 0/0).
        """
        if not self.patterns:
            return 0.0
        return self.refine_stats.false_drops / len(self.patterns)

    @property
    def certified_fraction(self) -> float:
        """Fraction of the answer set accepted without touching the database.

        The paper reports 80-90 % for DFP at the default settings.
        """
        if not self.patterns:
            return 0.0
        return self.filter_stats.certified / len(self.patterns)

    def add_pattern(self, itemset: frozenset, count: int, exact: bool) -> None:
        """Record one frequent pattern with its count and exactness."""
        self.patterns[itemset] = PatternCount(count, exact)

    def summary(self) -> str:
        """One-line human summary used by the CLI and examples."""
        return (
            f"{self.algorithm}: {len(self.patterns)} frequent patterns "
            f"(min_support={self.min_support}, |D|={self.n_transactions}) "
            f"false_drops={self.refine_stats.false_drops} "
            f"probes={self.refine_stats.probes} scans={self.refine_stats.scans} "
            f"certified={self.filter_stats.certified} "
            f"elapsed={self.elapsed_seconds:.3f}s"
        )

    # -- serialization (the CLI's `mine --out` / `rules` pipeline) ---------

    def to_json_dict(self) -> dict:
        """A JSON-safe dict capturing patterns and statistics.

        Items must be ``int`` or ``str``; they are stored type-tagged so
        a round-trip restores the original types.
        """
        return {
            "format": "repro-mining-result",
            "version": 1,
            "algorithm": self.algorithm,
            "min_support": self.min_support,
            "n_transactions": self.n_transactions,
            "elapsed_seconds": self.elapsed_seconds,
            "patterns": [
                {
                    "items": sorted(
                        (_tag_item(i) for i in itemset), key=repr
                    ),
                    "count": pattern.count,
                    "exact": pattern.exact,
                }
                for itemset, pattern in sorted(
                    self.patterns.items(),
                    key=lambda kv: (len(kv[0]), repr(sorted(map(repr, kv[0])))),
                )
            ],
            "filter_stats": dict(vars(self.filter_stats)),
            "refine_stats": dict(vars(self.refine_stats)),
        }

    @classmethod
    def from_json_dict(cls, payload: dict) -> "MiningResult":
        """Rebuild a result written by :meth:`to_json_dict`."""
        if payload.get("format") != "repro-mining-result":
            raise ValueError("not a serialized mining result")
        if payload.get("version") != 1:
            raise ValueError(
                f"unsupported result version {payload.get('version')!r}"
            )
        result = cls(
            algorithm=payload["algorithm"],
            min_support=int(payload["min_support"]),
            n_transactions=int(payload["n_transactions"]),
        )
        result.elapsed_seconds = float(payload.get("elapsed_seconds", 0.0))
        for entry in payload["patterns"]:
            itemset = frozenset(_untag_item(i) for i in entry["items"])
            result.patterns[itemset] = PatternCount(
                int(entry["count"]), bool(entry["exact"])
            )
        result.filter_stats = FilterStats(**payload.get("filter_stats", {}))
        result.refine_stats = RefineStats(**payload.get("refine_stats", {}))
        return result

    def save_json(self, path) -> None:
        """Write the serialized result to ``path``."""
        import json
        from pathlib import Path

        Path(path).write_text(json.dumps(self.to_json_dict(), indent=1))

    @classmethod
    def load_json(cls, path) -> "MiningResult":
        """Read a result written by :meth:`save_json`."""
        import json
        from pathlib import Path

        return cls.from_json_dict(json.loads(Path(path).read_text()))


def _tag_item(item) -> list:
    if isinstance(item, bool) or not isinstance(item, (int, str)):
        raise ValueError(
            f"only int and str items serialize, got {type(item).__name__}"
        )
    return ["i", item] if isinstance(item, int) else ["s", item]


def _untag_item(tagged: list):
    tag, value = tagged
    if tag == "i":
        return int(value)
    if tag == "s":
        return str(value)
    raise ValueError(f"unknown item tag {tag!r}")
