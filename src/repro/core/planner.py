"""Cost-based refinement planning: choosing Probe vs SequentialScan.

Section 3.2 of the paper states the trade-off but leaves the choice to
the reader: *"we expect SequentialScan to perform well if the average
estimated number of transactions containing an itemset is large.  On
the other hand, we expect Probe to be more efficient when the average
estimated number ... is small."*  This module turns that sentence into
a planner.

The planner runs a cheap *pilot*: a DualFilter capped at 2-itemsets
(one vectorised pass over the extension lattice, no database access).
From the pilot it measures the mean estimated count of the uncertain
candidates — exactly the quantity the paper's rule keys on — and picks:

* **Probe** (DFP) when probing a typical candidate would fetch a small
  fraction of the database, and
* **SequentialScan** (DFS) when candidate estimates are so large that
  per-candidate probing would touch most tuples anyway.

The dual filter is always used: its certification is free accuracy.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.bbs import BBS
from repro.core.filters import DualFilter
from repro.core.mining import mine_dfp, mine_dfs
from repro.core.refine import resolve_threshold
from repro.core.results import MiningResult

#: Probe wins while a typical candidate's estimate stays below this
#: fraction of the database; above it, one shared sequential scan is
#: cheaper than per-candidate fetches.
PROBE_FRACTION_CUTOFF = 0.125


@dataclass(frozen=True)
class Plan:
    """The planner's decision and the evidence behind it."""

    algorithm: str               # "dfp" or "dfs"
    mean_candidate_estimate: float
    n_pilot_candidates: int
    cutoff_tuples: float

    @property
    def reason(self) -> str:
        """Human-readable justification of the decision."""
        side = "<" if self.algorithm == "dfp" else ">="
        return (
            f"pilot mean estimate {self.mean_candidate_estimate:.1f} "
            f"{side} cutoff {self.cutoff_tuples:.1f} tuples "
            f"over {self.n_pilot_candidates} uncertain candidates"
        )


def plan_refinement(
    bbs: BBS,
    threshold: int,
    *,
    probe_fraction_cutoff: float = PROBE_FRACTION_CUTOFF,
) -> Plan:
    """Choose probe vs scan from a 2-itemset pilot filter (no DB access)."""
    pilot = DualFilter(bbs, threshold, max_size=2).run()
    uncertain = pilot.candidates
    cutoff = probe_fraction_cutoff * max(bbs.n_transactions, 1)
    if not uncertain:
        # Everything certified: DFP finishes without probing at all.
        return Plan("dfp", 0.0, 0, cutoff)
    mean_estimate = sum(est for _, est in uncertain) / len(uncertain)
    algorithm = "dfp" if mean_estimate < cutoff else "dfs"
    return Plan(algorithm, mean_estimate, len(uncertain), cutoff)


def mine_auto(
    database,
    bbs: BBS,
    min_support,
    *,
    memory_bytes: int | None = None,
    max_size: int | None = None,
    workers: int = 1,
    probe_fraction_cutoff: float = PROBE_FRACTION_CUTOFF,
) -> MiningResult:
    """Mine with the planner-selected dual-filter scheme.

    The returned result's ``algorithm`` field records the decision, e.g.
    ``"auto:dfp"``.  ``workers`` parallelises the chosen scheme (the
    pilot itself is one cheap vector pass and stays serial); the
    adaptive memory-constrained pipeline always runs serially.
    """
    threshold = resolve_threshold(min_support, max(len(database), 1))
    plan = plan_refinement(
        bbs, threshold, probe_fraction_cutoff=probe_fraction_cutoff
    )
    if memory_bytes is not None and bbs.size_bytes > memory_bytes:
        from repro.core.adaptive import mine_adaptive

        result = mine_adaptive(
            database, bbs, threshold, plan.algorithm,
            memory_bytes=memory_bytes, max_size=max_size,
        )
        result.algorithm = f"auto:{result.algorithm}"
        return result
    if workers != 1:
        from repro.core.parallel import mine_parallel

        result = mine_parallel(
            database, bbs, threshold, plan.algorithm,
            workers=workers, memory_bytes=memory_bytes, max_size=max_size,
        )
    else:
        runner = mine_dfp if plan.algorithm == "dfp" else mine_dfs
        result = runner(
            database, bbs, threshold,
            memory_bytes=memory_bytes, max_size=max_size,
        )
    result.algorithm = f"auto:{plan.algorithm}"
    return result
