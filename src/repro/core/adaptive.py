"""Adaptive three-phase filtering for memory-constrained systems (§3.1).

When the BBS does not fit in memory, repeated slice reads would thrash.
The paper bounds the I/O to **two passes over the BBS**:

1. **Preprocessing** — read the BBS once and fold its ``m`` slices down
   to the ``K`` slices that fit (``MemBBS``): slice ``j`` absorbs, by
   OR, every slice congruent to ``j`` mod ``K`` (*"rehashing the
   remaining m − k slices to any of these k slices"*).
2. **Filtering** — run SingleFilter or DualFilter entirely on the
   memory-resident MemBBS.  Folding only *adds* bits, so MemBBS is
   still a valid over-estimator and every lemma continues to hold; the
   candidate set is merely larger.
3. **Postprocessing** — one sequential pass over the full BBS
   re-estimates each surviving candidate with the sharper full-width
   estimate and prunes those that fall below τ.

The remaining candidates then go through the usual refinement
(SequentialScan or Probe, per the selected algorithm).  DualFilter's
certified set needs no postprocessing: its guarantees were derived from
valid (if looser) estimates plus exact 1-item counts.
"""

from __future__ import annotations


from repro.core.bbs import BBS
from repro.core.filters import DualFilter, SingleFilter
from repro.core.mining import _check_alignment, _finish, _start
from repro.core.refine import (
    probe_all,
    resolve_threshold,
    sequential_scan,
)
from repro.core.results import MiningResult
from repro.errors import ConfigurationError

#: Fraction of the memory budget granted to the folded slice matrix;
#: the rest is working space for candidates and buffers.
SLICE_BUDGET_FRACTION = 0.8

#: Refuse to filter on a fold whose slices are mostly ones.  Past this
#: density nearly every itemset passes the folded filter and the
#: enumeration explodes combinatorially — a failure mode the paper's
#: description of MemBBS leaves implicit.  The caller should raise the
#: memory budget (or shrink m) instead.
MAX_SAFE_FOLD_DENSITY = 0.55


def measured_density(bbs: BBS) -> float:
    """Fraction of set bits across all live slice words of ``bbs``."""
    if bbs.n_transactions == 0:
        return 0.0
    from repro.core import bitvec

    total = sum(
        bitvec.popcount(bbs.slice_words(row)) for row in range(bbs.m)
    )
    return total / (bbs.m * bbs.n_transactions)


def fold_width_for_budget(bbs: BBS, memory_bytes: int) -> int:
    """How many slices of this BBS fit in ``memory_bytes``."""
    if memory_bytes < 1:
        raise ConfigurationError(f"memory budget must be positive, got {memory_bytes}")
    bytes_per_slice = max(1, bbs.n_words * 8)
    k_slices = int(memory_bytes * SLICE_BUDGET_FRACTION) // bytes_per_slice
    return max(1, min(bbs.m, k_slices))


def mine_adaptive(
    database,
    bbs: BBS,
    min_support,
    algorithm: str,
    *,
    memory_bytes: int,
    max_size: int | None = None,
) -> MiningResult:
    """The three-phase pipeline for any of the four algorithms.

    The integrated probing of SFP/DFP does not apply here — the paper's
    adaptive variant filters first (phases 1-3) and refines afterwards,
    with the algorithm choice deciding dual vs single filtering and
    probe vs scan refinement.
    """
    _check_alignment(database, bbs)
    threshold = resolve_threshold(min_support, len(database))
    result = MiningResult(f"{algorithm}+adaptive", threshold, len(database))
    io_before, started = _start(database, bbs)

    # Phase 1: one full read of the BBS builds the in-memory fold.
    bbs_pages = _pages(bbs.size_bytes, database.page_bytes)
    bbs.stats.page_reads += bbs_pages
    mem_bbs = bbs.fold(fold_width_for_budget(bbs, memory_bytes))
    density = measured_density(mem_bbs)
    if density > MAX_SAFE_FOLD_DENSITY:
        raise ConfigurationError(
            f"memory budget {memory_bytes} folds the index to "
            f"{mem_bbs.m} slices with bit density {density:.2f}; filtering "
            f"on such a fold degenerates (nearly every candidate passes). "
            f"Raise the budget or rebuild the index with a smaller m."
        )

    # Phase 2: filter on the fold (no I/O; MemBBS is resident).
    dual = algorithm.startswith("df")
    filter_cls = DualFilter if dual else SingleFilter
    output = filter_cls(mem_bbs, threshold, max_size=max_size).run()
    result.filter_stats = output.stats

    # Phase 3: one more BBS pass re-estimates the uncertain candidates
    # at full width and prunes those that fall below the threshold.
    bbs.stats.page_reads += bbs_pages
    survivors = []
    for itemset, _folded_est in output.candidates:
        est = bbs.count_itemset(itemset)
        result.filter_stats.count_itemset_calls += 1
        if est >= threshold:
            survivors.append((itemset, est))
        else:
            result.filter_stats.post_pruned += 1

    # Certified patterns from the dual filter stand as-is.
    for itemset, pattern in output.certain.items():
        result.patterns[itemset] = pattern

    # Refinement, per the algorithm's second letter.
    if algorithm.endswith("p"):
        confirmed = probe_all(
            database, bbs, survivors, threshold, stats=result.refine_stats
        )
    else:
        confirmed = sequential_scan(
            database,
            [itemset for itemset, _ in survivors],
            threshold,
            memory_bytes=memory_bytes,
            stats=result.refine_stats,
        )
    for itemset, count in confirmed.items():
        result.add_pattern(itemset, count, exact=True)
    return _finish(result, database, bbs, io_before, started)


def _pages(n_bytes: int, page_bytes: int) -> int:
    if n_bytes <= 0:
        return 0
    return (n_bytes + page_bytes - 1) // page_bytes
