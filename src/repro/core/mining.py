"""The four filter-and-refine mining algorithms (Section 3.3).

===  =============  ==============  =====================================
Name Filter         Refinement      Notes
===  =============  ==============  =====================================
SFS  SingleFilter   SequentialScan  two separate phases
SFP  SingleFilter   Probe           integrated: probe on discovery
DFS  DualFilter     SequentialScan  only the uncertain set F' is scanned
DFP  DualFilter     Probe           integrated; probes upgrade flags to
                                    exact counts, feeding Corollary 1
===  =============  ==============  =====================================

The integrated schemes probe the database the moment a candidate passes
the BBS filter.  The paper highlights two consequences, both visible in
this implementation: results stream out immediately, and a refuted false
drop never spawns recursive false-drop chains (its subtree is skipped).

Use :func:`mine` for the uniform entry point, or the per-algorithm
functions when the algorithm choice is fixed.
"""

from __future__ import annotations

import time

from repro.core import bitvec
from repro.core.bbs import BBS
from repro.core.checkcount import Certainty
from repro.core.filters import DualFilter, DualState, SingleFilter
from repro.core.refine import probe, resolve_threshold, sequential_scan
from repro.core.results import MiningResult, PatternCount
from repro.data.database import TransactionDatabase
from repro.errors import ConfigurationError, DatabaseMismatchError

ALGORITHMS = ("sfs", "sfp", "dfs", "dfp")


def mine(
    database: TransactionDatabase,
    bbs: BBS,
    min_support,
    algorithm: str = "dfp",
    *,
    memory_bytes: int | None = None,
    max_size: int | None = None,
    workers: int = 1,
) -> MiningResult:
    """Mine frequent patterns with one of the four BBS schemes.

    Parameters
    ----------
    database / bbs:
        The transaction database and its BBS index.  They must cover the
        same transactions in the same order.
    min_support:
        Absolute count (``int``) or fraction of ``|D|`` (``float``).
    algorithm:
        One of ``"sfs"``, ``"sfp"``, ``"dfs"``, ``"dfp"`` (the paper's
        best performer, DFP, is the default), or ``"auto"`` to let the
        pilot-based planner pick probe vs scan (see
        :mod:`repro.core.planner`).
    memory_bytes:
        Optional memory budget.  When the BBS does not fit, the adaptive
        three-phase pipeline of Section 3.1 is used; the budget also
        bounds the candidate batches of SequentialScan.
    max_size:
        Optional cap on pattern length.
    workers:
        Number of worker processes for the filter and refinement phases
        (see :mod:`repro.core.parallel`).  The default 1 is the exact
        serial path; any value returns identical ``patterns``.  The
        adaptive (memory-constrained) pipeline always runs serially.
    """
    name = algorithm.lower()
    if name == "auto":
        from repro.core.planner import mine_auto

        return mine_auto(
            database, bbs, min_support,
            memory_bytes=memory_bytes, max_size=max_size, workers=workers,
        )
    if name not in ALGORITHMS:
        raise ConfigurationError(
            f"unknown algorithm {algorithm!r}; expected one of "
            f"{ALGORITHMS + ('auto',)}"
        )
    _warn_if_saturated(bbs)
    if memory_bytes is not None and bbs.size_bytes > memory_bytes:
        from repro.core.adaptive import mine_adaptive

        return mine_adaptive(
            database, bbs, min_support, name,
            memory_bytes=memory_bytes, max_size=max_size,
        )
    if workers != 1:
        from repro.core.parallel import mine_parallel

        return mine_parallel(
            database, bbs, min_support, name,
            workers=workers, memory_bytes=memory_bytes, max_size=max_size,
        )
    runner = {
        "sfs": mine_sfs, "sfp": mine_sfp, "dfs": mine_dfs, "dfp": mine_dfp,
    }[name]
    return runner(
        database, bbs, min_support, memory_bytes=memory_bytes, max_size=max_size
    )


#: Above this signature density with a large item universe, the filter
#: enumeration degenerates (nearly every itemset passes the AND test).
SATURATION_DENSITY = 0.6
SATURATION_MIN_ITEMS = 128


def _warn_if_saturated(bbs: BBS) -> None:
    if (
        bbs.mean_signature_density > SATURATION_DENSITY
        and len(bbs.item_counts) > SATURATION_MIN_ITEMS
    ):
        import warnings

        warnings.warn(
            f"BBS signatures are {bbs.mean_signature_density:.0%} dense with "
            f"{len(bbs.item_counts)} items; the filter enumeration may "
            f"degenerate — rebuild the index with a larger m",
            RuntimeWarning,
            stacklevel=3,
        )


# --------------------------------------------------------------------------
# Integrated probe-based engines
# --------------------------------------------------------------------------


class _ProbingSingleFilter(SingleFilter):
    """SingleFilter with the Probe refinement fused in (algorithm SFP)."""

    def __init__(self, bbs, threshold, database, result, **kwargs):
        super().__init__(bbs, threshold, **kwargs)
        self._db = database
        self._result = result

    def visit(self, itemset, est, vector, parent_state, ext):
        """Probe the candidate immediately; recurse only if confirmed."""
        stats = self.output.stats
        stats.candidates += 1
        key = frozenset(itemset)
        positions = bitvec.indices_of_set_bits(vector, self.bbs.n_transactions)
        actual = probe(self._db, key, positions, stats=self._result.refine_stats)
        if actual < self.threshold:
            # A refuted candidate's subtree is skipped entirely: this is
            # the "false drops do not trigger further false drops" effect.
            self._result.refine_stats.false_drops += 1
            return False, None
        self._result.refine_stats.verified += 1
        self._result.add_pattern(key, actual, exact=True)
        return True, None


class _ProbingDualFilter(DualFilter):
    """DualFilter with the Probe refinement fused in (algorithm DFP)."""

    def __init__(self, bbs, threshold, database, result, **kwargs):
        super().__init__(bbs, threshold, **kwargs)
        self._db = database
        self._result = result

    def visit(self, itemset, est, vector, parent_state, ext):
        """CheckCount first; probe only the uncertain (flag-0) patterns."""
        stats = self.output.stats
        flag, count = self._classify(itemset, est, parent_state, ext)
        if flag is Certainty.INFREQUENT:
            stats.pruned_infrequent_item += 1
            return False, parent_state
        stats.candidates += 1
        key = frozenset(itemset)
        if flag is Certainty.EXACT:
            stats.certified_exact += 1
            self._result.add_pattern(key, count, exact=True)
        elif flag is Certainty.BOUNDED:
            stats.certified_bounded += 1
            self._result.add_pattern(key, count, exact=False)
        else:
            # Uncertain: probe now.  A confirmed probe yields the actual
            # count, upgrading the flag so descendants can be certified
            # through Corollary 1 without further database access.
            stats.uncertain += 1
            positions = bitvec.indices_of_set_bits(vector, self.bbs.n_transactions)
            actual = probe(self._db, key, positions, stats=self._result.refine_stats)
            if actual < self.threshold:
                self._result.refine_stats.false_drops += 1
                return False, parent_state
            self._result.refine_stats.verified += 1
            self._result.add_pattern(key, actual, exact=True)
            flag, count = Certainty.EXACT, actual
        return True, DualState(count=count, flag=flag, est=est)


# --------------------------------------------------------------------------
# The four algorithms
# --------------------------------------------------------------------------


def _check_alignment(database, bbs) -> None:
    if bbs.n_transactions != len(database):
        raise DatabaseMismatchError(
            f"index covers {bbs.n_transactions} transactions, "
            f"database has {len(database)}"
        )


def _finish(result, database, bbs, io_before, started) -> MiningResult:
    result.elapsed_seconds = time.perf_counter() - started
    deltas = [database.stats - io_before[0]]
    if bbs.stats is not database.stats:
        deltas.append(bbs.stats - io_before[1])
    merged = deltas[0]
    for extra in deltas[1:]:
        merged = merged.merged(extra)
    result.io = merged
    return result


def _start(database, bbs):
    return (database.stats.snapshot(), bbs.stats.snapshot()), time.perf_counter()


def mine_containing(
    database,
    bbs,
    seed,
    min_support,
    *,
    max_size: int | None = None,
    workers: int = 1,
) -> MiningResult:
    """Mine only the frequent patterns that **contain** ``seed``.

    An item-constrained variant in the spirit of Section 3.4: the
    enumeration is rooted at the seed pattern instead of the empty one,
    so the work is proportional to the seed's lattice neighbourhood
    rather than the whole pattern space.  Uses the integrated DFP
    machinery: the seed is probed once (yielding its exact count) and
    the DualFilter certification chain continues from there.

    Returns an empty result when the seed itself is not frequent.
    """
    _check_alignment(database, bbs)
    seed_set = frozenset(seed)
    if not seed_set:
        raise ConfigurationError("mine_containing needs a non-empty seed")
    threshold = resolve_threshold(min_support, len(database))
    result = MiningResult("dfp+seeded", threshold, len(database))
    io_before, started = _start(database, bbs)

    est, vector = bbs.count_and_vector(seed_set)
    result.filter_stats.count_itemset_calls += 1
    if est < threshold:
        return _finish(result, database, bbs, io_before, started)
    positions = bitvec.indices_of_set_bits(vector, bbs.n_transactions)
    actual = probe(database, seed_set, positions, stats=result.refine_stats)
    if actual < threshold:
        result.refine_stats.false_drops += 1
        return _finish(result, database, bbs, io_before, started)
    result.refine_stats.verified += 1
    result.add_pattern(seed_set, actual, exact=True)
    result.filter_stats.candidates += 1

    seed_state = DualState(count=actual, flag=Certainty.EXACT, est=est)
    if workers != 1:
        from repro.core.parallel import _mine_into, _validate_workers

        _validate_workers(workers)
        worker_io = _mine_into(
            result, database, bbs, threshold, "dfp",
            workers=workers, max_size=max_size,
            seed_pack={"items": tuple(sorted(seed_set, key=repr)),
                       "state": seed_state},
        )
        _finish(result, database, bbs, io_before, started)
        result.io = result.io.merged(worker_io)
        return result
    flt = _ProbingDualFilter(
        bbs, threshold, database, result,
        max_size=max_size,
        seed=seed_set,
        seed_state=seed_state,
    )
    output = flt.run()
    # Merge the subtree's filter counters into the result's.
    for name in vars(output.stats):
        setattr(
            result.filter_stats, name,
            getattr(result.filter_stats, name) + getattr(output.stats, name),
        )
    return _finish(result, database, bbs, io_before, started)


def mine_sfs(
    database, bbs, min_support, *, memory_bytes=None, max_size=None
) -> MiningResult:
    """Algorithm SFS: SingleFilter then SequentialScan (two phases)."""
    _check_alignment(database, bbs)
    threshold = resolve_threshold(min_support, len(database))
    result = MiningResult("sfs", threshold, len(database))
    io_before, started = _start(database, bbs)
    flt = SingleFilter(bbs, threshold, max_size=max_size)
    output = flt.run()
    result.filter_stats = output.stats
    confirmed = sequential_scan(
        database,
        [itemset for itemset, _ in output.candidates],
        threshold,
        memory_bytes=memory_bytes,
        stats=result.refine_stats,
    )
    for itemset, count in confirmed.items():
        result.add_pattern(itemset, count, exact=True)
    return _finish(result, database, bbs, io_before, started)


def mine_dfs(
    database, bbs, min_support, *, memory_bytes=None, max_size=None
) -> MiningResult:
    """Algorithm DFS: DualFilter then SequentialScan over the uncertain set."""
    _check_alignment(database, bbs)
    threshold = resolve_threshold(min_support, len(database))
    result = MiningResult("dfs", threshold, len(database))
    io_before, started = _start(database, bbs)
    flt = DualFilter(bbs, threshold, max_size=max_size)
    output = flt.run()
    result.filter_stats = output.stats
    for itemset, pattern in output.certain.items():
        result.patterns[itemset] = pattern
    confirmed = sequential_scan(
        database,
        [itemset for itemset, _ in output.candidates],
        threshold,
        memory_bytes=memory_bytes,
        stats=result.refine_stats,
    )
    for itemset, count in confirmed.items():
        result.add_pattern(itemset, count, exact=True)
    return _finish(result, database, bbs, io_before, started)


def mine_sfp(
    database, bbs, min_support, *, memory_bytes=None, max_size=None
) -> MiningResult:
    """Algorithm SFP: SingleFilter with integrated probing."""
    _check_alignment(database, bbs)
    threshold = resolve_threshold(min_support, len(database))
    result = MiningResult("sfp", threshold, len(database))
    io_before, started = _start(database, bbs)
    flt = _ProbingSingleFilter(bbs, threshold, database, result, max_size=max_size)
    output = flt.run()
    result.filter_stats = output.stats
    return _finish(result, database, bbs, io_before, started)


def mine_dfp(
    database, bbs, min_support, *, memory_bytes=None, max_size=None
) -> MiningResult:
    """Algorithm DFP: DualFilter with integrated probing (the paper's best)."""
    _check_alignment(database, bbs)
    threshold = resolve_threshold(min_support, len(database))
    result = MiningResult("dfp", threshold, len(database))
    io_before, started = _start(database, bbs)
    flt = _ProbingDualFilter(bbs, threshold, database, result, max_size=max_size)
    output = flt.run()
    result.filter_stats = output.stats
    return _finish(result, database, bbs, io_before, started)
