"""The paper's primary contribution: the BBS index and its miners."""

from repro.core.bbs import BBS
from repro.core.checkcount import Certainty, check_count
from repro.core.filters import DualFilter, FilterOutput, SingleFilter
from repro.core.incremental import IncrementalMiner
from repro.core.mining import (
    mine,
    mine_containing,
    mine_dfp,
    mine_dfs,
    mine_sfp,
    mine_sfs,
)
from repro.core.parallel import build_partitioned, mine_parallel
from repro.core.planner import mine_auto, plan_refinement
from repro.core.refine import probe, resolve_threshold, sequential_scan
from repro.core.results import (
    FilterStats,
    MiningResult,
    PatternCount,
    RefineStats,
)

__all__ = [
    "BBS",
    "Certainty",
    "check_count",
    "DualFilter",
    "FilterOutput",
    "SingleFilter",
    "IncrementalMiner",
    "mine",
    "mine_dfp",
    "mine_dfs",
    "mine_sfp",
    "mine_sfs",
    "mine_auto",
    "mine_containing",
    "plan_refinement",
    "build_partitioned",
    "mine_parallel",
    "probe",
    "resolve_threshold",
    "sequential_scan",
    "FilterStats",
    "MiningResult",
    "PatternCount",
    "RefineStats",
]
