"""Shared-memory parallel execution layer (partitioned build + subtree mining).

The pipeline is embarrassingly parallel at three seams, and this module
exploits all three with ordinary worker processes:

* **Partitioned index builds** — :func:`build_partitioned` shards the
  transaction range into contiguous partitions, builds one BBS per
  partition in a worker process, and merges them with
  :meth:`~repro.core.bbs.BBS.concat` in partition order.  Because a BBS
  is position-aligned with its database, the merged index is
  bit-identical to a serial :meth:`BBS.from_database` build.
* **Subtree-parallel filtering** — :func:`mine_parallel` runs the
  depth-1 pass once, places the ``(m, n_words)`` slice matrix in
  :mod:`multiprocessing.shared_memory` so every worker maps it
  zero-copy, and fans the surviving top-level extension subtrees out
  across a persistent worker pool.  The depth-first enumeration only
  ever extends a pattern with items *after* its first item, so the
  top-level subtrees are disjoint: per-subtree outputs concatenated in
  subtree order reproduce the serial discovery order exactly.
* **Parallel SequentialScan** — the SFS/DFS refinement phase splits the
  candidate list into contiguous chunks, one scan pipeline per worker.

Wall-clock discipline (the PR-7 rework; see DESIGN.md §6):

* **Persistent pools.**  The shared-memory export and its worker pool
  form a :class:`_MiningSession`, created once per (index, database)
  pair and reused by every subsequent ``mine_parallel`` /
  ``mine_containing`` / scan call — workers attach the slice matrix and
  materialise their private database copy exactly once, then
  reconfigure lazily (rebuilding just the engine and its depth-1 pass)
  when a task arrives with a different algorithm/threshold.  Sessions
  are torn down explicitly (:func:`shutdown_pools`), by a
  ``weakref.finalize`` when the index or database is garbage-collected,
  by staleness (epoch bump, start-method change), or at interpreter
  exit.  Partitioned builds keep one generic pool per (workers,
  start-method).  All executors live in :mod:`repro.core.pool` — the
  invariant linter's RPR009 keeps per-mine spawns from creeping back.
* **Batched subtrees.**  Tasks are sibling-subtree *batches*, not one
  future per root: per-root cost bounds in the spirit of the
  Geerts/Goethals tight candidate bound (:func:`_subtree_weights`) are
  LPT-packed into ~4x`workers` batches, so dispatch overhead amortises
  over predictably large chunks of work while the heavy left-edge
  subtrees still start first.  Within a batch the worker estimates the
  whole sibling group's depth-2 frontier in one vectorized AND +
  popcount pass (:meth:`FilterEngine.run_roots_batched`).

Determinism rules (also in DESIGN.md): subtree outputs are merged in
ascending subtree offset, scan chunks in ascending chunk index, and
counter bundles (:class:`FilterStats`, :class:`RefineStats`,
:class:`IOStats`) are summed field-wise in that same order — so two
runs with the same ``workers`` produce identical results *and*
identical statistics, and ``patterns`` is byte-identical to the serial
run for any ``workers``.

Workers that die mid-task surface as a typed
:class:`~repro.errors.ParallelExecutionError` instead of a hang, and
the broken session is torn down — shared memory unlinked, pool closed —
so the next call starts clean.
"""

from __future__ import annotations

import heapq
import os
import time
import weakref

import numpy as np

from repro.core.bbs import BBS, DEFAULT_K
from repro.core.counts import ItemCountTable
from repro.core.filters import FilterOutput
from repro.core.hashing import HashFamily, MD5HashFamily, family_from_description
from repro.core.pool import START_METHOD_ENV, WorkerPool, mp_context
from repro.core.refine import resolve_threshold, sequential_scan
from repro.core.results import MiningResult, PatternCount, RefineStats
from repro.data.database import TransactionDatabase
from repro.errors import (
    ConfigurationError,
    ParallelExecutionError,
    ReproError,
)
from repro.storage.metrics import IOStats

#: Environment hook used by the fault-injection tests: a worker that is
#: handed a batch containing the subtree at this offset exits hard,
#: simulating a crash.
CRASH_OFFSET_ENV = "REPRO_PARALLEL_CRASH_OFFSET"

#: Batches per worker: enough slack for the LPT schedule to drain evenly
#: without falling back into one-future-per-root dispatch overhead.
_BATCH_OVERSUBSCRIPTION = 4


def _validate_workers(workers) -> int:
    if isinstance(workers, bool) or not isinstance(workers, int):
        raise ConfigurationError(
            f"workers must be an int >= 1, got {workers!r}"
        )
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    return workers


def _check_family_roundtrip(family: HashFamily) -> dict:
    """The family descriptor workers rebuild the hash family from."""
    desc = family.describe()
    try:
        rebuilt = family_from_description(desc)
    except ReproError as exc:
        raise ParallelExecutionError(
            f"hash family {desc!r} cannot be reconstructed in worker "
            f"processes; mine with workers=1 or use a registered family"
        ) from exc
    if rebuilt.m != family.m or rebuilt.k != family.k:
        raise ParallelExecutionError(
            f"hash family {desc!r} does not round-trip through its "
            f"descriptor (got m={rebuilt.m}, k={rebuilt.k})"
        )
    return desc


# --------------------------------------------------------------------------
# Shared-memory slice matrix
# --------------------------------------------------------------------------


def _export_shared_index(bbs: BBS):
    """Copy the live slice matrix into a shared-memory block.

    Returns ``(shm, meta)``: the owning handle (caller must ``close`` +
    ``unlink``) and the picklable descriptor workers attach from.
    """
    from multiprocessing import shared_memory

    n_words = bbs.n_words
    n_bytes = max(1, bbs.m * n_words * np.dtype(np.uint64).itemsize)
    shm = shared_memory.SharedMemory(create=True, size=n_bytes)
    try:
        if n_words:
            view = np.ndarray(
                (bbs.m, n_words), dtype=np.uint64, buffer=shm.buf
            )
            np.copyto(view, bbs._slices[:, :n_words])
        meta = {
            "name": shm.name,
            "m": bbs.m,
            "n_words": n_words,
            "n_tx": bbs.n_transactions,
            "family": _check_family_roundtrip(bbs.hash_family),
            "item_counts": bbs.item_counts.as_dict(),
            "signature_bits_total": bbs._signature_bits_total,
        }
    except BaseException:
        # The segment exists in the kernel the moment create=True
        # returns; a failed copy or an unpicklable hash family must not
        # orphan it.
        shm.close()
        shm.unlink()
        raise
    return shm, meta


def _attach_shared_index(meta: dict):
    """Map the shared slice matrix and wrap it in a zero-copy BBS view."""
    from multiprocessing import shared_memory

    # Pool workers share the parent's resource tracker, so the attach
    # here only re-adds the name the parent registered at create time;
    # the parent's unlink() retires it exactly once at session teardown.
    shm = shared_memory.SharedMemory(name=meta["name"])
    slices = np.ndarray(
        (meta["m"], meta["n_words"]), dtype=np.uint64, buffer=shm.buf
    )
    slices.setflags(write=False)
    family = family_from_description(meta["family"])
    bbs = BBS.__new__(BBS)
    bbs.hash_family = family
    bbs.m = family.m
    bbs.k = family.k
    bbs.stats = IOStats()
    bbs._slices = slices
    bbs._n_tx = meta["n_tx"]
    bbs._item_counts = ItemCountTable(meta["item_counts"])
    bbs._signature_bits_total = meta["signature_bits_total"]
    return shm, bbs


def _database_payload(database) -> dict:
    """A picklable snapshot workers rebuild a private database from."""
    return {
        "transactions": list(database),
        "page_bytes": getattr(database, "page_bytes", None),
    }


def _database_from_payload(payload: dict) -> TransactionDatabase:
    kwargs = {}
    if payload["page_bytes"]:
        kwargs["page_bytes"] = payload["page_bytes"]
    return TransactionDatabase(payload["transactions"], **kwargs)


# --------------------------------------------------------------------------
# Worker process state
# --------------------------------------------------------------------------

_WORKER: dict = {}


def _make_engine(algorithm, bbs, threshold, database, result, max_size, seed_pack):
    """Instantiate the filter engine a subtree task runs."""
    from repro.core.filters import DualFilter, SingleFilter
    from repro.core.mining import _ProbingDualFilter, _ProbingSingleFilter

    seed = seed_pack["items"] if seed_pack else None
    seed_state = seed_pack["state"] if seed_pack else None
    if seed_pack and algorithm != "dfp":
        raise ConfigurationError(
            f"seeded parallel mining only supports dfp, got {algorithm!r}"
        )
    if algorithm == "sfs":
        return SingleFilter(bbs, threshold, max_size=max_size)
    if algorithm == "dfs":
        return DualFilter(bbs, threshold, max_size=max_size)
    if algorithm == "sfp":
        return _ProbingSingleFilter(
            bbs, threshold, database, result, max_size=max_size
        )
    if algorithm == "dfp":
        return _ProbingDualFilter(
            bbs, threshold, database, result, max_size=max_size,
            seed=seed, seed_state=seed_state,
        )
    raise ConfigurationError(f"unknown parallel algorithm {algorithm!r}")


def _init_mine_worker(meta, db_payload):
    """Pool initializer: the once-per-process part of worker setup.

    Attaches the shared slice matrix and materialises the private
    database copy.  Engine construction is deferred to the first task
    (:func:`_ensure_engine`), so one pool serves any sequence of
    algorithm/threshold configurations.
    """
    shm, bbs = _attach_shared_index(meta)
    database = _database_from_payload(db_payload)
    _WORKER.clear()
    _WORKER.update(
        shm=shm,  # keep the mapping alive for the worker's lifetime
        bbs=bbs,
        database=database,
        config=None,
    )


def _ensure_engine(config: dict) -> None:
    """Lazily (re)build the filter engine when the task config changes.

    The expensive per-process state (shared matrix attach, database
    copy) persists across mines; only the engine and its depth-1
    ``prepare()`` rerun when algorithm/threshold/max_size/seed differ
    from the previous task's config.
    """
    if _WORKER.get("config") == config and "engine" in _WORKER:
        return
    bbs = _WORKER["bbs"]
    database = _WORKER["database"]
    shell = MiningResult(
        config["algorithm"], config["threshold"], bbs.n_transactions
    )
    engine = _make_engine(
        config["algorithm"], bbs, config["threshold"], database, shell,
        config["max_size"], config["seed_pack"],
    )
    prepared = engine.prepare()
    _WORKER.update(engine=engine, prepared=prepared, config=dict(config))


class _SubtreeMeter:
    """Per-subtree output shells plus time/IO attribution for one batch.

    ``FilterEngine.run_roots_batched`` interleaves work across the
    batch's subtrees (root visits first, then the shared sibling
    AND-pass, then the walks); :meth:`activate` swaps the engine's
    output shell to the subtree about to be worked on and attributes the
    elapsed time and IO deltas since the previous boundary to the
    subtree that produced them.  Per-subtree payloads therefore merge in
    the parent exactly like the old one-task-per-root payloads did.
    """

    def __init__(self, engine, database, bbs, config: dict):
        self._engine = engine
        self._database = database
        self._bbs = bbs
        self._algorithm = config["algorithm"]
        self._threshold = config["threshold"]
        self._shells: dict[int, dict] = {}
        self._current: int | None = None
        self._mark = None

    def _shell(self, offset: int) -> dict:
        entry = self._shells.get(offset)
        if entry is None:
            entry = {
                "shell": MiningResult(
                    self._algorithm, self._threshold, self._bbs.n_transactions
                ),
                "output": FilterOutput(),
                "seconds": 0.0,
                "io": IOStats(),
            }
            self._shells[offset] = entry
        return entry

    def activate(self, offset: int) -> None:
        self.flush()
        entry = self._shell(offset)
        engine = self._engine
        engine.output = entry["output"]
        if hasattr(engine, "_result"):
            engine._result = entry["shell"]  # probing engines stream here
        self._current = offset
        self._mark = (
            time.perf_counter(),
            self._database.stats.snapshot(),
            self._bbs.stats.snapshot(),
        )

    def flush(self) -> None:
        if self._current is None:
            return
        started, db_before, bbs_before = self._mark
        entry = self._shells[self._current]
        entry["seconds"] += time.perf_counter() - started
        delta = (self._database.stats - db_before).merged(
            self._bbs.stats - bbs_before
        )
        entry["io"] = entry["io"].merged(delta)
        self._current = None

    def payload(self, offset: int) -> dict:
        entry = self._shell(offset)
        shell, output = entry["shell"], entry["output"]
        return {
            "offset": offset,
            "seconds": entry["seconds"],
            "patterns": [
                (itemset, pattern.count, pattern.exact)
                for itemset, pattern in shell.patterns.items()
            ],
            "certain": [
                (itemset, pattern.count, pattern.exact)
                for itemset, pattern in output.certain.items()
            ],
            "candidates": list(output.candidates),
            "filter_stats": dict(vars(output.stats)),
            "refine_stats": dict(vars(shell.refine_stats)),
            "io": entry["io"],
        }


def _run_subtree_batch(
    config: dict, offsets: tuple, crash_at: int | None = None
) -> dict:
    """Mine a batch of sibling subtrees; returns per-subtree payloads.

    ``crash_at`` is resolved by the *parent* from ``CRASH_OFFSET_ENV``
    (persistent workers predate any later env change) and makes the
    worker exit hard, simulating a crash for the fault-injection tests.
    """
    if crash_at is not None and crash_at in offsets:
        os._exit(17)
    _ensure_engine(config)
    if not _WORKER["prepared"]:
        raise ParallelExecutionError(
            "worker received a subtree batch but its depth-1 pass found no "
            "surviving roots — parent/worker index views diverge"
        )
    engine = _WORKER["engine"]
    started = time.perf_counter()
    meter = _SubtreeMeter(engine, _WORKER["database"], _WORKER["bbs"], config)
    engine.run_roots_batched(offsets, activate=meter.activate)
    meter.flush()
    return {
        "pid": os.getpid(),
        "seconds": time.perf_counter() - started,
        "subtrees": [meter.payload(offset) for offset in sorted(offsets)],
    }


def _run_scan_chunk(candidates, threshold, memory_bytes) -> dict:
    """SequentialScan one contiguous chunk of the candidate list."""
    database = _WORKER["database"]
    db_before = database.stats.snapshot()
    stats = RefineStats()
    started = time.perf_counter()
    confirmed = sequential_scan(
        database, candidates, threshold,
        memory_bytes=memory_bytes, stats=stats,
    )
    return {
        "seconds": time.perf_counter() - started,
        "confirmed": confirmed,
        "refine_stats": dict(vars(stats)),
        "io": database.stats - db_before,
    }


def _build_partition(transactions, family_desc) -> tuple:
    """Worker side of :func:`build_partitioned`: index one shard."""
    family = family_from_description(family_desc)
    bbs = BBS(family.m, family.k, hash_family=family)
    for itemset in transactions:
        bbs.insert(itemset)
    return bbs._raw_state()


# --------------------------------------------------------------------------
# Persistent sessions and pools
# --------------------------------------------------------------------------


class _MiningSession:
    """One shared-index export plus the persistent pool mining it.

    Created on the first ``workers>1`` mine over a (bbs, database) pair
    and reused by every later call with the same pair: the export and
    the worker-side database copies are paid once, and only the engine's
    depth-1 pass reruns when the mining config changes.
    """

    def __init__(self, database, bbs, workers: int, pool_size: int):
        self.workers = workers  # as requested, for staleness checks
        self.epoch = getattr(bbs, "epoch", None)
        self.n_tx = bbs.n_transactions
        self.db_len = len(database)
        self.uses = 0
        self.shm, self.meta = _export_shared_index(bbs)
        try:
            self.pool = WorkerPool(
                pool_size,
                initializer=_init_mine_worker,
                initargs=(self.meta, _database_payload(database)),
            )
        except BaseException:
            self._release_shm()
            raise
        self.pool.add_close_hook(self._release_shm)
        self._released = False

    @property
    def shm_name(self) -> str:
        return self.meta["name"]

    def _release_shm(self) -> None:
        if getattr(self, "_released", False):
            return
        self._released = True
        try:
            self.shm.close()
            self.shm.unlink()
        except OSError:  # pragma: no cover - already retired
            pass

    def close(self) -> None:
        """Tear down the pool and unlink the shared segment; idempotent."""
        self.pool.close()  # close hook releases the shared memory

    def stale_for(self, database, bbs, workers: int, pool_size: int) -> bool:
        """Whether this session can serve a new mine over (bbs, database)."""
        return (
            self.pool.closed
            or self.workers != workers
            or self.pool.workers < pool_size
            or self.epoch != getattr(bbs, "epoch", None)
            or self.n_tx != bbs.n_transactions
            or self.db_len != len(database)
            or self.pool.start_method != mp_context().get_start_method()
        )


#: Live mining sessions, keyed by (id(bbs), id(database)).  Entries are
#: retired by staleness at lease time, by weakref finalizers when either
#: object is garbage-collected, explicitly via shutdown_pools(), or by
#: the pool layer's atexit hook.
_SESSIONS: dict[tuple[int, int], _MiningSession] = {}

#: Generic pools for partitioned builds, keyed by (workers, start method).
_BUILD_POOLS: dict[tuple[int, str], WorkerPool] = {}


def _retire_session(key: tuple[int, int], session: _MiningSession) -> None:
    if _SESSIONS.get(key) is session:
        del _SESSIONS[key]
    session.close()


def _lease_session(database, bbs, workers: int, pool_size: int) -> _MiningSession:
    key = (id(bbs), id(database))
    session = _SESSIONS.get(key)
    if session is not None and session.stale_for(
        database, bbs, workers, pool_size
    ):
        _retire_session(key, session)
        session = None
    if session is None:
        session = _MiningSession(database, bbs, workers, pool_size)
        _SESSIONS[key] = session
        # Either side dying retires the session (and its shared memory).
        weakref.finalize(bbs, _retire_session, key, session)
        weakref.finalize(database, _retire_session, key, session)
    return session


def _lease_build_pool(workers: int) -> WorkerPool:
    method = mp_context().get_start_method()
    key = (workers, method)
    cached = _BUILD_POOLS.get(key)
    if cached is not None and not cached.closed:
        return cached
    created = WorkerPool(workers)
    _BUILD_POOLS[key] = created
    return created


def active_sessions() -> list[_MiningSession]:
    """The live mining sessions (diagnostics and lifecycle tests)."""
    return [s for s in _SESSIONS.values() if not s.pool.closed]


def shutdown_pools() -> None:
    """Explicitly tear down every persistent session and build pool."""
    for key in list(_SESSIONS):
        _retire_session(key, _SESSIONS[key])
    for key in list(_BUILD_POOLS):
        _BUILD_POOLS.pop(key).close()


# --------------------------------------------------------------------------
# Parallel partitioned build
# --------------------------------------------------------------------------


def build_partitioned(
    database,
    m: int,
    k: int = DEFAULT_K,
    *,
    workers: int = 1,
    partitions: int | None = None,
    hash_family: HashFamily | None = None,
    stats: IOStats | None = None,
) -> BBS:
    """Build a BBS over ``database`` from per-partition worker builds.

    The transaction range is split into ``partitions`` contiguous shards
    (default: one per worker), each shard is indexed independently in a
    worker process, and the shard indexes are merged with
    :meth:`BBS.concat` in partition order — producing an index
    bit-identical to a serial :meth:`BBS.from_database` build.

    ``workers=1`` is exactly the serial build.  Worker pools persist
    across calls (one per worker count and start method).
    """
    _validate_workers(workers)
    if partitions is not None and partitions < 1:
        raise ConfigurationError(f"partitions must be >= 1, got {partitions}")
    family = hash_family if hash_family is not None else MD5HashFamily(m, k)
    if family.m != m:
        raise ConfigurationError(
            f"hash family width {family.m} does not match m={m}"
        )
    if workers == 1 and partitions is None:
        return BBS.from_database(
            database, m, k, hash_family=family, stats=stats
        )
    family_desc = _check_family_roundtrip(family)
    transactions = [itemset for _, itemset in database.scan()]
    n_parts = min(partitions or workers, max(1, len(transactions)))
    if not transactions:
        return BBS(m, family.k, hash_family=family, stats=stats)
    chunks = _split_chunks(transactions, n_parts)
    if workers == 1:
        raw_states = [_build_partition(chunk, family_desc) for chunk in chunks]
    else:
        pool = _lease_build_pool(min(workers, n_parts))
        futures = {
            pool.submit(_build_partition, chunk, family_desc): index
            for index, chunk in enumerate(chunks)
        }
        payloads = pool.collect(futures)
        raw_states = [payloads[index] for index in range(len(chunks))]
    parts = [
        BBS._from_raw_state(family, slices, n_tx, counts, bits)
        for slices, n_tx, counts, bits in raw_states
    ]
    combined = parts[0]
    for part in parts[1:]:
        combined = combined.concat(part)
    if stats is not None:
        combined.stats = stats
    return combined


def _split_chunks(sequence, n_chunks: int) -> list:
    """Split into ``n_chunks`` contiguous near-even chunks (all non-empty)."""
    n = len(sequence)
    base, extra = divmod(n, n_chunks)
    chunks, start = [], 0
    for index in range(n_chunks):
        size = base + (1 if index < extra else 0)
        if size:
            chunks.append(sequence[start:start + size])
        start += size
    return chunks


# --------------------------------------------------------------------------
# Subtree batching (Geerts/Goethals-informed task sizing)
# --------------------------------------------------------------------------


def _subtree_weights(root_estimates, n_roots: int) -> list[int]:
    """Per-root cost bounds used to size sibling batches.

    Two bounds, take the min.  The Geerts/Goethals/Van den Bussche tight
    candidate bound (PAPERS.md) caps how many candidate patterns the
    enumeration can still generate below a node by a combinatorial
    function of the surviving extension items; for a root at offset
    ``o`` with ``r`` later siblings that collapses to at most
    ``2^r - 1`` itemsets — tiny near the right edge of the item order,
    which is exactly what lets dozens of tail subtrees share one batch
    (and one sibling AND-pass) without unbalancing the schedule.  For
    the broad left-edge subtrees the combinatorial bound is vacuous, so
    the estimate-mass proxy ``est(root) * r`` (the pre-PR-7 LPT weight:
    vector work per candidate times frontier width) takes over.
    """
    weights = []
    for offset in range(n_roots):
        remaining = n_roots - offset - 1
        weight = max(1, int(root_estimates[offset])) * max(1, remaining)
        if remaining < 60:  # beyond 2^60 the bound cannot bind
            candidate_bound = (1 << remaining) - 1 if remaining else 1
            weight = min(weight, candidate_bound)
        weights.append(max(1, weight))
    return weights


def _pack_batches(weights: list[int], workers: int) -> list[tuple]:
    """LPT-pack subtree offsets into ~4x``workers`` balanced batches.

    Deterministic: offsets are assigned largest-weight-first (ties by
    offset) to the least-loaded batch (ties by batch index).  Batches
    are returned heaviest-first — the submission order — with offsets
    ascending inside each batch.
    """
    n = len(weights)
    n_batches = max(1, min(n, workers * _BATCH_OVERSUBSCRIPTION))
    order = sorted(range(n), key=lambda o: (-weights[o], o))
    bins: list[list[int]] = [[] for _ in range(n_batches)]
    heap = [(0, index) for index in range(n_batches)]
    heapq.heapify(heap)
    for offset in order:
        load, index = heapq.heappop(heap)
        bins[index].append(offset)
        heapq.heappush(heap, (load + weights[offset], index))
    loads = {index: load for load, index in heap}
    packed = sorted(
        (index for index in range(n_batches) if bins[index]),
        key=lambda index: (-loads[index], index),
    )
    return [tuple(sorted(bins[index])) for index in packed]


# --------------------------------------------------------------------------
# Subtree-parallel mining
# --------------------------------------------------------------------------


def mine_parallel(
    database,
    bbs: BBS,
    min_support,
    algorithm: str = "dfp",
    *,
    workers: int,
    memory_bytes: int | None = None,
    max_size: int | None = None,
) -> MiningResult:
    """Mine with ``workers`` processes; exact-equal to the serial miner.

    The driver behind ``mine(..., workers=N)``: runs the depth-1 pass in
    the parent, leases the persistent session for (bbs, database), fans
    sibling-subtree batches out largest-first, and merges per-subtree
    outputs deterministically.  The result's ``patterns`` (contents
    *and* insertion order), counts, and exactness flags are identical to
    ``workers=1``.
    """
    from repro.core.mining import _check_alignment, _finish, _start

    _validate_workers(workers)
    _check_alignment(database, bbs)
    threshold = resolve_threshold(min_support, len(database))
    result = MiningResult(algorithm, threshold, len(database))
    io_before, started = _start(database, bbs)
    worker_io = _mine_into(
        result, database, bbs, threshold, algorithm,
        workers=workers, memory_bytes=memory_bytes, max_size=max_size,
    )
    _finish(result, database, bbs, io_before, started)
    result.io = result.io.merged(worker_io)
    return result


def _mine_into(
    result: MiningResult,
    database,
    bbs: BBS,
    threshold: int,
    algorithm: str,
    *,
    workers: int,
    memory_bytes: int | None = None,
    max_size: int | None = None,
    seed_pack: dict | None = None,
) -> IOStats:
    """Run the parallel filter+refine phases, merging into ``result``.

    Returns the summed worker-side :class:`IOStats` (the caller owns
    parent-side accounting).  ``seed_pack`` roots the enumeration at a
    seed pattern (see :func:`repro.core.mining.mine_containing`).
    """
    worker_io = IOStats()
    info = {
        "workers": workers,
        "algorithm": algorithm,
        "subtrees": 0,
        "subtree_seconds": [],
        "batches": 0,
        "batch_seconds": [],
        "scan_chunks": 0,
        "scan_seconds": [],
        "pool_reused": False,
        "worker_pids": [],
    }
    result.parallel_info = info

    # Parent-side depth-1 pass: identical to the serial prepare(), and
    # the source of both the schedule and the depth-1 stats.
    proto = _make_engine(
        algorithm, bbs, threshold, database,
        MiningResult(algorithm, threshold, bbs.n_transactions),
        max_size, seed_pack,
    )
    prepared = proto.prepare()
    _add_stats(result.filter_stats, dict(vars(proto.output.stats)))
    if not prepared:
        return worker_io

    n_roots = len(proto._extensions)
    info["subtrees"] = n_roots
    effective_workers = max(1, min(workers, n_roots))
    batches = _pack_batches(
        _subtree_weights(proto._root_estimates, n_roots), effective_workers
    )
    info["batches"] = len(batches)

    session = _lease_session(database, bbs, workers, effective_workers)
    info["pool_reused"] = session.uses > 0
    session.uses += 1
    info["start_method"] = session.pool.start_method
    config = {
        "algorithm": algorithm,
        "threshold": threshold,
        "max_size": max_size,
        "seed_pack": seed_pack,
    }
    crash_raw = os.environ.get(CRASH_OFFSET_ENV)
    crash_at = int(crash_raw) if crash_raw is not None else None
    futures = {
        session.pool.submit(_run_subtree_batch, config, batch, crash_at): index
        for index, batch in enumerate(batches)
    }
    payloads = session.pool.collect(futures)
    info["worker_pids"] = session.pool.worker_pids()
    per_offset: dict[int, dict] = {}
    for index in range(len(batches)):
        batch_payload = payloads[index]
        info["batch_seconds"].append(batch_payload["seconds"])
        for item in batch_payload["subtrees"]:
            per_offset[item["offset"]] = item
    candidates = _merge_subtree_payloads(
        result, algorithm, per_offset, worker_io, info
    )
    if algorithm in ("sfs", "dfs") and candidates:
        _parallel_scan(
            result, session.pool, candidates, threshold,
            memory_bytes, effective_workers, worker_io, info,
        )
    return worker_io


def _merge_subtree_payloads(result, algorithm, payloads, worker_io, info):
    """Fold per-subtree outputs into ``result`` in subtree order."""
    candidates = []
    for offset in sorted(payloads):
        payload = payloads[offset]
        info["subtree_seconds"].append(payload["seconds"])
        _add_stats(result.filter_stats, payload["filter_stats"])
        _add_stats(result.refine_stats, payload["refine_stats"])
        _add_stats(worker_io, dict(vars(payload["io"])))
        if algorithm == "dfs":
            for itemset, count, exact in payload["certain"]:
                result.patterns[itemset] = PatternCount(count, exact)
        if algorithm in ("sfp", "dfp"):
            for itemset, count, exact in payload["patterns"]:
                result.add_pattern(itemset, count, exact)
        candidates.extend(payload["candidates"])
    return candidates


def _parallel_scan(
    result, pool, candidates, threshold, memory_bytes, n_chunks, worker_io, info
):
    """SFS/DFS refinement: scan contiguous candidate chunks in parallel."""
    itemsets = [itemset for itemset, _est in candidates]
    chunks = _split_chunks(itemsets, min(n_chunks, len(itemsets)))
    info["scan_chunks"] = len(chunks)
    futures = {
        pool.submit(_run_scan_chunk, chunk, threshold, memory_bytes): index
        for index, chunk in enumerate(chunks)
    }
    payloads = pool.collect(futures)
    for index in range(len(chunks)):
        payload = payloads[index]
        info["scan_seconds"].append(payload["seconds"])
        _add_stats(result.refine_stats, payload["refine_stats"])
        _add_stats(worker_io, dict(vars(payload["io"])))
        for itemset, count in payload["confirmed"].items():
            result.add_pattern(itemset, count, exact=True)


def _add_stats(target, fields: dict) -> None:
    """Sum a counter-bundle dict into a stats dataclass, field-wise."""
    for name, value in fields.items():
        setattr(target, name, getattr(target, name) + value)
