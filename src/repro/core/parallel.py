"""Shared-memory parallel execution layer (partitioned build + subtree mining).

The pipeline is embarrassingly parallel at three seams, and this module
exploits all three with ordinary worker processes:

* **Partitioned index builds** — :func:`build_partitioned` shards the
  transaction range into contiguous partitions, builds one BBS per
  partition in a worker process, and merges them with
  :meth:`~repro.core.bbs.BBS.concat` in partition order.  Because a BBS
  is position-aligned with its database, the merged index is
  bit-identical to a serial :meth:`BBS.from_database` build.
* **Subtree-parallel filtering** — :func:`mine_parallel` runs the
  depth-1 pass once, places the ``(m, n_words)`` slice matrix in
  :mod:`multiprocessing.shared_memory` so every worker maps it
  zero-copy, and fans the surviving top-level extension subtrees out
  across a process pool.  The depth-first enumeration only ever extends
  a pattern with items *after* its first item, so the top-level
  subtrees are disjoint: per-subtree outputs concatenated in subtree
  order reproduce the serial discovery order exactly.
* **Parallel SequentialScan** — the SFS/DFS refinement phase splits the
  candidate list into contiguous chunks, one scan pipeline per worker.

Determinism rules (also in DESIGN.md): subtree outputs are merged in
ascending subtree offset, scan chunks in ascending chunk index, and
counter bundles (:class:`FilterStats`, :class:`RefineStats`,
:class:`IOStats`) are summed field-wise in that same order — so two
runs with the same ``workers`` produce identical results *and*
identical statistics, and ``patterns`` is byte-identical to the serial
run for any ``workers``.

Work is scheduled largest-first: subtree cost is estimated as the root
estimate times the remaining extension count, so the heavy left-most
subtrees start before the cheap tail and the pool drains evenly.

Workers are seeded once per process (pool initializer): they attach the
shared slice matrix, rebuild the hash family from its descriptor, and
materialise a private in-memory copy of the transaction database for
probing and scanning.  A worker that dies mid-task surfaces as a typed
:class:`~repro.errors.ParallelExecutionError` instead of a hang.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool

import numpy as np

from repro.core.bbs import BBS, DEFAULT_K
from repro.core.counts import ItemCountTable
from repro.core.filters import FilterOutput
from repro.core.hashing import HashFamily, MD5HashFamily, family_from_description
from repro.core.refine import resolve_threshold, sequential_scan
from repro.core.results import MiningResult, PatternCount, RefineStats
from repro.data.database import TransactionDatabase
from repro.errors import (
    ConfigurationError,
    ParallelExecutionError,
    ReproError,
)
from repro.storage.metrics import IOStats

#: Environment hook used by the fault-injection tests: a worker that is
#: handed the subtree at this offset exits hard, simulating a crash.
CRASH_OFFSET_ENV = "REPRO_PARALLEL_CRASH_OFFSET"

#: Environment override for the multiprocessing start method.
START_METHOD_ENV = "REPRO_PARALLEL_START_METHOD"


def _mp_context():
    import multiprocessing

    method = os.environ.get(START_METHOD_ENV)
    if method is None:
        available = multiprocessing.get_all_start_methods()
        method = "fork" if "fork" in available else "spawn"
    return multiprocessing.get_context(method)


def _validate_workers(workers) -> int:
    if isinstance(workers, bool) or not isinstance(workers, int):
        raise ConfigurationError(
            f"workers must be an int >= 1, got {workers!r}"
        )
    if workers < 1:
        raise ConfigurationError(f"workers must be >= 1, got {workers}")
    return workers


def _check_family_roundtrip(family: HashFamily) -> dict:
    """The family descriptor workers rebuild the hash family from."""
    desc = family.describe()
    try:
        rebuilt = family_from_description(desc)
    except ReproError as exc:
        raise ParallelExecutionError(
            f"hash family {desc!r} cannot be reconstructed in worker "
            f"processes; mine with workers=1 or use a registered family"
        ) from exc
    if rebuilt.m != family.m or rebuilt.k != family.k:
        raise ParallelExecutionError(
            f"hash family {desc!r} does not round-trip through its "
            f"descriptor (got m={rebuilt.m}, k={rebuilt.k})"
        )
    return desc


# --------------------------------------------------------------------------
# Shared-memory slice matrix
# --------------------------------------------------------------------------


def _export_shared_index(bbs: BBS):
    """Copy the live slice matrix into a shared-memory block.

    Returns ``(shm, meta)``: the owning handle (caller must ``close`` +
    ``unlink``) and the picklable descriptor workers attach from.
    """
    from multiprocessing import shared_memory

    n_words = bbs.n_words
    n_bytes = max(1, bbs.m * n_words * np.dtype(np.uint64).itemsize)
    shm = shared_memory.SharedMemory(create=True, size=n_bytes)
    if n_words:
        view = np.ndarray((bbs.m, n_words), dtype=np.uint64, buffer=shm.buf)
        np.copyto(view, bbs._slices[:, :n_words])
    meta = {
        "name": shm.name,
        "m": bbs.m,
        "n_words": n_words,
        "n_tx": bbs.n_transactions,
        "family": _check_family_roundtrip(bbs.hash_family),
        "item_counts": bbs.item_counts.as_dict(),
        "signature_bits_total": bbs._signature_bits_total,
    }
    return shm, meta


def _attach_shared_index(meta: dict):
    """Map the shared slice matrix and wrap it in a zero-copy BBS view."""
    from multiprocessing import shared_memory

    # Pool workers share the parent's resource tracker, so the attach
    # here only re-adds the name the parent registered at create time;
    # the parent's unlink() retires it exactly once at the end.
    shm = shared_memory.SharedMemory(name=meta["name"])
    slices = np.ndarray(
        (meta["m"], meta["n_words"]), dtype=np.uint64, buffer=shm.buf
    )
    slices.setflags(write=False)
    family = family_from_description(meta["family"])
    bbs = BBS.__new__(BBS)
    bbs.hash_family = family
    bbs.m = family.m
    bbs.k = family.k
    bbs.stats = IOStats()
    bbs._slices = slices
    bbs._n_tx = meta["n_tx"]
    bbs._item_counts = ItemCountTable(meta["item_counts"])
    bbs._signature_bits_total = meta["signature_bits_total"]
    return shm, bbs


def _database_payload(database) -> dict:
    """A picklable snapshot workers rebuild a private database from."""
    return {
        "transactions": list(database),
        "page_bytes": getattr(database, "page_bytes", None),
    }


def _database_from_payload(payload: dict) -> TransactionDatabase:
    kwargs = {}
    if payload["page_bytes"]:
        kwargs["page_bytes"] = payload["page_bytes"]
    return TransactionDatabase(payload["transactions"], **kwargs)


# --------------------------------------------------------------------------
# Worker process state
# --------------------------------------------------------------------------

_WORKER: dict = {}


def _make_engine(algorithm, bbs, threshold, database, result, max_size, seed_pack):
    """Instantiate the filter engine a subtree task runs."""
    from repro.core.filters import DualFilter, SingleFilter
    from repro.core.mining import _ProbingDualFilter, _ProbingSingleFilter

    seed = seed_pack["items"] if seed_pack else None
    seed_state = seed_pack["state"] if seed_pack else None
    if seed_pack and algorithm != "dfp":
        raise ConfigurationError(
            f"seeded parallel mining only supports dfp, got {algorithm!r}"
        )
    if algorithm == "sfs":
        return SingleFilter(bbs, threshold, max_size=max_size)
    if algorithm == "dfs":
        return DualFilter(bbs, threshold, max_size=max_size)
    if algorithm == "sfp":
        return _ProbingSingleFilter(
            bbs, threshold, database, result, max_size=max_size
        )
    if algorithm == "dfp":
        return _ProbingDualFilter(
            bbs, threshold, database, result, max_size=max_size,
            seed=seed, seed_state=seed_state,
        )
    raise ConfigurationError(f"unknown parallel algorithm {algorithm!r}")


def _init_mine_worker(meta, db_payload, algorithm, threshold, max_size, seed_pack):
    shm, bbs = _attach_shared_index(meta)
    database = _database_from_payload(db_payload)
    shell = MiningResult(algorithm, threshold, bbs.n_transactions)
    engine = _make_engine(
        algorithm, bbs, threshold, database, shell, max_size, seed_pack
    )
    prepared = engine.prepare()
    _WORKER.clear()
    _WORKER.update(
        shm=shm,  # keep the mapping alive for the worker's lifetime
        bbs=bbs,
        database=database,
        engine=engine,
        prepared=prepared,
        algorithm=algorithm,
        threshold=threshold,
    )


def _run_subtree(offset: int) -> dict:
    """Mine one top-level subtree; returns its serialized output."""
    crash_at = os.environ.get(CRASH_OFFSET_ENV)
    if crash_at is not None and int(crash_at) == offset:
        os._exit(17)  # simulate a hard worker crash (fault injection)
    if not _WORKER.get("prepared"):
        raise ParallelExecutionError(
            "worker received a subtree but its depth-1 pass found no "
            "surviving roots — parent/worker index views diverge"
        )
    engine = _WORKER["engine"]
    database = _WORKER["database"]
    bbs = _WORKER["bbs"]
    db_before = database.stats.snapshot()
    bbs_before = bbs.stats.snapshot()
    shell = MiningResult(
        _WORKER["algorithm"], _WORKER["threshold"], bbs.n_transactions
    )
    engine.output = FilterOutput()
    if hasattr(engine, "_result"):
        engine._result = shell  # probing engines stream into the shell
    started = time.perf_counter()
    engine.run_roots([offset])
    seconds = time.perf_counter() - started
    output = engine.output
    return {
        "offset": offset,
        "seconds": seconds,
        "patterns": [
            (itemset, pattern.count, pattern.exact)
            for itemset, pattern in shell.patterns.items()
        ],
        "certain": [
            (itemset, pattern.count, pattern.exact)
            for itemset, pattern in output.certain.items()
        ],
        "candidates": list(output.candidates),
        "filter_stats": dict(vars(output.stats)),
        "refine_stats": dict(vars(shell.refine_stats)),
        "io": (database.stats - db_before).merged(bbs.stats - bbs_before),
    }


def _run_scan_chunk(candidates, threshold, memory_bytes) -> dict:
    """SequentialScan one contiguous chunk of the candidate list."""
    database = _WORKER["database"]
    db_before = database.stats.snapshot()
    stats = RefineStats()
    started = time.perf_counter()
    confirmed = sequential_scan(
        database, candidates, threshold,
        memory_bytes=memory_bytes, stats=stats,
    )
    return {
        "seconds": time.perf_counter() - started,
        "confirmed": confirmed,
        "refine_stats": dict(vars(stats)),
        "io": database.stats - db_before,
    }


def _build_partition(transactions, family_desc) -> tuple:
    """Worker side of :func:`build_partitioned`: index one shard."""
    family = family_from_description(family_desc)
    bbs = BBS(family.m, family.k, hash_family=family)
    for itemset in transactions:
        bbs.insert(itemset)
    return bbs._raw_state()


def _collect(futures: dict) -> dict:
    """Gather ``{future: key}`` results, surfacing crashes as typed errors."""
    payloads = {}
    try:
        for future in as_completed(futures):
            payloads[futures[future]] = future.result()
    except BrokenProcessPool as exc:
        raise ParallelExecutionError(
            "a parallel worker process died mid-run (crash or kill); "
            "partial results were discarded"
        ) from exc
    except ReproError:
        raise
    except Exception as exc:
        raise ParallelExecutionError(
            f"a parallel worker task failed: {exc}"
        ) from exc
    return payloads


# --------------------------------------------------------------------------
# Parallel partitioned build
# --------------------------------------------------------------------------


def build_partitioned(
    database,
    m: int,
    k: int = DEFAULT_K,
    *,
    workers: int = 1,
    partitions: int | None = None,
    hash_family: HashFamily | None = None,
    stats: IOStats | None = None,
) -> BBS:
    """Build a BBS over ``database`` from per-partition worker builds.

    The transaction range is split into ``partitions`` contiguous shards
    (default: one per worker), each shard is indexed independently in a
    worker process, and the shard indexes are merged with
    :meth:`BBS.concat` in partition order — producing an index
    bit-identical to a serial :meth:`BBS.from_database` build.

    ``workers=1`` is exactly the serial build.
    """
    _validate_workers(workers)
    if partitions is not None and partitions < 1:
        raise ConfigurationError(f"partitions must be >= 1, got {partitions}")
    family = hash_family if hash_family is not None else MD5HashFamily(m, k)
    if family.m != m:
        raise ConfigurationError(
            f"hash family width {family.m} does not match m={m}"
        )
    if workers == 1 and partitions is None:
        return BBS.from_database(
            database, m, k, hash_family=family, stats=stats
        )
    family_desc = _check_family_roundtrip(family)
    transactions = [itemset for _, itemset in database.scan()]
    n_parts = min(partitions or workers, max(1, len(transactions)))
    if not transactions:
        return BBS(m, family.k, hash_family=family, stats=stats)
    chunks = _split_chunks(transactions, n_parts)
    if workers == 1:
        raw_states = [_build_partition(chunk, family_desc) for chunk in chunks]
    else:
        ctx = _mp_context()
        with ProcessPoolExecutor(
            max_workers=min(workers, n_parts), mp_context=ctx
        ) as pool:
            futures = {
                pool.submit(_build_partition, chunk, family_desc): index
                for index, chunk in enumerate(chunks)
            }
            payloads = _collect(futures)
        raw_states = [payloads[index] for index in range(len(chunks))]
    parts = [
        BBS._from_raw_state(family, slices, n_tx, counts, bits)
        for slices, n_tx, counts, bits in raw_states
    ]
    combined = parts[0]
    for part in parts[1:]:
        combined = combined.concat(part)
    if stats is not None:
        combined.stats = stats
    return combined


def _split_chunks(sequence, n_chunks: int) -> list:
    """Split into ``n_chunks`` contiguous near-even chunks (all non-empty)."""
    n = len(sequence)
    base, extra = divmod(n, n_chunks)
    chunks, start = [], 0
    for index in range(n_chunks):
        size = base + (1 if index < extra else 0)
        if size:
            chunks.append(sequence[start:start + size])
        start += size
    return chunks


# --------------------------------------------------------------------------
# Subtree-parallel mining
# --------------------------------------------------------------------------


def mine_parallel(
    database,
    bbs: BBS,
    min_support,
    algorithm: str = "dfp",
    *,
    workers: int,
    memory_bytes: int | None = None,
    max_size: int | None = None,
) -> MiningResult:
    """Mine with ``workers`` processes; exact-equal to the serial miner.

    The driver behind ``mine(..., workers=N)``: runs the depth-1 pass in
    the parent, shares the slice matrix, fans the top-level subtrees out
    largest-first, and merges per-worker outputs deterministically.  The
    result's ``patterns`` (contents *and* insertion order), counts, and
    exactness flags are identical to ``workers=1``.
    """
    from repro.core.mining import _check_alignment, _finish, _start

    _validate_workers(workers)
    _check_alignment(database, bbs)
    threshold = resolve_threshold(min_support, len(database))
    result = MiningResult(algorithm, threshold, len(database))
    io_before, started = _start(database, bbs)
    worker_io = _mine_into(
        result, database, bbs, threshold, algorithm,
        workers=workers, memory_bytes=memory_bytes, max_size=max_size,
    )
    _finish(result, database, bbs, io_before, started)
    result.io = result.io.merged(worker_io)
    return result


def _mine_into(
    result: MiningResult,
    database,
    bbs: BBS,
    threshold: int,
    algorithm: str,
    *,
    workers: int,
    memory_bytes: int | None = None,
    max_size: int | None = None,
    seed_pack: dict | None = None,
) -> IOStats:
    """Run the parallel filter+refine phases, merging into ``result``.

    Returns the summed worker-side :class:`IOStats` (the caller owns
    parent-side accounting).  ``seed_pack`` roots the enumeration at a
    seed pattern (see :func:`repro.core.mining.mine_containing`).
    """
    worker_io = IOStats()
    info = {
        "workers": workers,
        "algorithm": algorithm,
        "subtrees": 0,
        "subtree_seconds": [],
        "scan_chunks": 0,
        "scan_seconds": [],
    }
    result.parallel_info = info

    # Parent-side depth-1 pass: identical to the serial prepare(), and
    # the source of both the schedule and the depth-1 stats.
    proto = _make_engine(
        algorithm, bbs, threshold, database,
        MiningResult(algorithm, threshold, bbs.n_transactions),
        max_size, seed_pack,
    )
    prepared = proto.prepare()
    _add_stats(result.filter_stats, dict(vars(proto.output.stats)))
    if not prepared:
        return worker_io

    root_estimates = proto._root_estimates
    n_roots = len(proto._extensions)
    info["subtrees"] = n_roots
    # Largest-first schedule: estimated subtree cost ~ root support x
    # remaining extensions.  Ties (and the final merge) break by offset.
    order = sorted(
        range(n_roots),
        key=lambda o: (-int(root_estimates[o]) * max(1, n_roots - o - 1), o),
    )

    effective_workers = max(1, min(workers, n_roots))
    shm, meta = _export_shared_index(bbs)
    try:
        ctx = _mp_context()
        info["start_method"] = ctx.get_start_method()
        with ProcessPoolExecutor(
            max_workers=effective_workers,
            mp_context=ctx,
            initializer=_init_mine_worker,
            initargs=(
                meta, _database_payload(database), algorithm,
                threshold, max_size, seed_pack,
            ),
        ) as pool:
            futures = {
                pool.submit(_run_subtree, offset): offset for offset in order
            }
            payloads = _collect(futures)
            candidates = _merge_subtree_payloads(
                result, algorithm, payloads, worker_io, info
            )
            if algorithm in ("sfs", "dfs") and candidates:
                _parallel_scan(
                    result, pool, candidates, threshold,
                    memory_bytes, effective_workers, worker_io, info,
                )
    finally:
        shm.close()
        shm.unlink()
    return worker_io


def _merge_subtree_payloads(result, algorithm, payloads, worker_io, info):
    """Fold per-subtree outputs into ``result`` in subtree order."""
    candidates = []
    for offset in sorted(payloads):
        payload = payloads[offset]
        info["subtree_seconds"].append(payload["seconds"])
        _add_stats(result.filter_stats, payload["filter_stats"])
        _add_stats(result.refine_stats, payload["refine_stats"])
        _add_stats(worker_io, dict(vars(payload["io"])))
        if algorithm == "dfs":
            for itemset, count, exact in payload["certain"]:
                result.patterns[itemset] = PatternCount(count, exact)
        if algorithm in ("sfp", "dfp"):
            for itemset, count, exact in payload["patterns"]:
                result.add_pattern(itemset, count, exact)
        candidates.extend(payload["candidates"])
    return candidates


def _parallel_scan(
    result, pool, candidates, threshold, memory_bytes, n_chunks, worker_io, info
):
    """SFS/DFS refinement: scan contiguous candidate chunks in parallel."""
    itemsets = [itemset for itemset, _est in candidates]
    chunks = _split_chunks(itemsets, min(n_chunks, len(itemsets)))
    info["scan_chunks"] = len(chunks)
    futures = {
        pool.submit(_run_scan_chunk, chunk, threshold, memory_bytes): index
        for index, chunk in enumerate(chunks)
    }
    payloads = _collect(futures)
    for index in range(len(chunks)):
        payload = payloads[index]
        info["scan_seconds"].append(payload["seconds"])
        _add_stats(result.refine_stats, payload["refine_stats"])
        _add_stats(worker_io, dict(vars(payload["io"])))
        for itemset, count in payload["confirmed"].items():
            result.add_pattern(itemset, count, exact=True)


def _add_stats(target, fields: dict) -> None:
    """Sum a counter-bundle dict into a stats dataclass, field-wise."""
    for name, value in fields.items():
        setattr(target, name, getattr(target, name) + value)
