"""Algorithm ``CheckCount`` (paper Figure 3) and its flag lattice.

``CheckCount`` decides, when extending a pattern ``I2`` by one item
``I1 = {i}``, whether the extended pattern can be *certified* frequent
without consulting the database — and whether its count is exact.

The flags, verbatim from the paper:

* ``-1`` — the pattern is non-frequent (only possible at the top level,
  where the 1-itemset table holds *exact* counts);
* ``0``  — frequent according to the BBS estimate, but uncertain: the
  refinement phase must verify it;
* ``1``  — frequent with 100 % guarantee and an **actual** count
  (Corollary 1: both constituents' estimates were exact, so the union's
  estimate is exact too);
* ``2``  — frequent with 100 % guarantee but only an **estimated**
  count (the Lemma 5 lower bound already clears the threshold).

The recursion threads ``(flag, count)`` downward: ``count`` is the
actual support of the current pattern when ``flag == 1`` and the BBS
estimate otherwise.
"""

from __future__ import annotations

from enum import IntEnum


class Certainty(IntEnum):
    """The paper's flag values with readable names."""

    INFREQUENT = -1
    UNCERTAIN = 0
    EXACT = 1
    BOUNDED = 2

    @property
    def guaranteed(self) -> bool:
        """Whether the pattern is certainly in the final answer set."""
        return self in (Certainty.EXACT, Certainty.BOUNDED)


def check_count(
    *,
    threshold: int,
    est_item: int,
    act_item: int,
    est_itemset: int | None,
    itemset_count: int,
    itemset_flag: Certainty,
    est_union: int,
) -> tuple[Certainty, int]:
    """Figure 3, line for line.

    Parameters
    ----------
    threshold:
        τ, the absolute minimum support.
    est_item / act_item:
        ``estCount(I1)`` and ``actCount(I1)`` for the single item being
        appended (the actual count comes from the exact 1-itemset table).
    est_itemset:
        ``estCount(I2)`` for the pattern being extended, or ``None`` when
        ``I2`` is empty (the paper's ``I2 = NULL`` branch).
    itemset_count / itemset_flag:
        The ``(count, flag)`` pair carried by the recursion for ``I2``.
    est_union:
        ``estCount(I1 ∪ I2)``, already computed by ``CountItemSet``.

    Returns
    -------
    (flag, count):
        The certainty flag and the count to carry for ``I1 ∪ I2``.
    """
    # Lines 1-3: extending the empty pattern — the 1-item table is exact.
    if est_itemset is None:
        if act_item < threshold:
            return Certainty.INFREQUENT, act_item
        return Certainty.EXACT, act_item

    # Lines 4-11 only apply when the current pattern's count is actual.
    if itemset_flag is Certainty.EXACT:
        item_is_exact = est_item == act_item
        # Line 6-7 (Corollary 1): both constituents exact => union exact.
        if item_is_exact and itemset_count == est_itemset:
            return Certainty.EXACT, est_union
        # Lines 8-9 (Lemma 5 lower bound, I1 exact):
        #   act(I1 ∪ I2) >= est(I1 ∪ I2) - (est(I2) - act(I2))
        if item_is_exact and est_union - (est_itemset - itemset_count) >= threshold:
            return Certainty.BOUNDED, est_union
        # Lines 10-11 (Lemma 5 lower bound with roles swapped, I2 exact):
        #   act(I1 ∪ I2) >= est(I1 ∪ I2) - (est(I1) - act(I1))
        if est_itemset == itemset_count and (
            est_union - (est_item - act_item) >= threshold
        ):
            return Certainty.BOUNDED, est_union

    # Line 13: no certification possible — carry the estimate.
    return Certainty.UNCERTAIN, est_union
