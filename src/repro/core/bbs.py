"""The Bit-Sliced Bloom-Filtered Signature File (BBS).

This is the paper's primary data structure (Section 2): every
transaction is mapped by ``k`` bloom-filter hash functions onto an
``m``-bit signature, and the signature file is stored *transposed* as
``m`` bit-slices so that :meth:`BBS.count_itemset` (the paper's
``CountItemSet``, Figure 1) reduces to ANDing a handful of slices and
popcounting the result.

Properties guaranteed by construction (Lemmas 1-4) and enforced by the
test suite:

* an estimate is never below the true support (no false misses);
* a transaction whose signature lacks any bit of the query signature is
  never counted (subset pruning);
* inserts are append-only — the structure is *dynamic and persistent*,
  never rebuilt.

Internally the slices live in a ``(m, capacity_words)`` ``uint64``
matrix: bit ``t`` of slice ``s`` is ``_slices[s, t // 64] >> (t % 64)``.
Capacity grows geometrically along the transaction axis.  The hot path
used by the filter recursion is :meth:`and_positions_into`, which ANDs
one item's slices into a caller-provided accumulator without allocating
(see DESIGN.md, "Incremental AND accumulator").
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.core import bitvec
from repro.core.counts import ItemCountTable
from repro.core.hashing import HashFamily, MD5HashFamily
from repro.errors import ConfigurationError, QueryError
from repro.storage.metrics import IOStats

DEFAULT_K = 4
_INITIAL_CAPACITY_WORDS = 16  # 1024 transactions before the first growth


class BBS:
    """Bit-Sliced Bloom-Filtered Signature File.

    Parameters
    ----------
    m:
        Signature width in bits (the number of bit-slices).  The paper
        explores 400-6400 and settles on 1600 for its default workload.
    k:
        Number of hash functions per item (ignored when ``hash_family``
        is given).  The paper's MD5 construction uses 4.
    hash_family:
        Custom :class:`~repro.core.hashing.HashFamily`; defaults to the
        paper's :class:`~repro.core.hashing.MD5HashFamily`.
    stats:
        Optional shared :class:`~repro.storage.metrics.IOStats`.
    """

    def __init__(
        self,
        m: int,
        k: int = DEFAULT_K,
        *,
        hash_family: HashFamily | None = None,
        stats: IOStats | None = None,
    ):
        if hash_family is None:
            hash_family = MD5HashFamily(m, k)
        if hash_family.m != m:
            raise ConfigurationError(
                f"hash family width {hash_family.m} does not match m={m}"
            )
        self.hash_family = hash_family
        self.m = m
        self.k = hash_family.k
        self.stats = stats if stats is not None else IOStats()
        self._slices = np.zeros((m, _INITIAL_CAPACITY_WORDS), dtype=np.uint64)
        self._n_tx = 0
        self._item_counts = ItemCountTable()
        self._signature_bits_total = 0
        self._epoch = 0

    # -- construction --------------------------------------------------------

    @classmethod
    def from_database(
        cls,
        database,
        m: int,
        k: int = DEFAULT_K,
        *,
        hash_family: HashFamily | None = None,
        stats: IOStats | None = None,
    ) -> "BBS":
        """Build a BBS over every transaction of ``database`` (one scan)."""
        bbs = cls(m, k, hash_family=hash_family, stats=stats)
        for _, itemset in database.scan():
            bbs.insert(itemset)
        return bbs

    def insert(self, items: Iterable) -> int:
        """Append one transaction's signature; returns its position.

        This is the whole update story for a dynamic database: no
        rebuild, no reordering — one scattered write per slice touched.
        """
        itemset = set(items)
        if not itemset:
            raise QueryError("cannot insert an empty transaction")
        positions = self.hash_family.itemset_positions(itemset)
        self._ensure_capacity(self._n_tx + 1)
        word = self._n_tx // bitvec.WORD_BITS
        mask = np.uint64(1 << (self._n_tx % bitvec.WORD_BITS))
        self._slices[positions, word] |= mask
        self._n_tx += 1
        self._item_counts.record(itemset)
        self._signature_bits_total += int(positions.size)
        self._epoch += 1
        return self._n_tx - 1

    def _ensure_capacity(self, n_tx: int) -> None:
        needed = bitvec.words_for_bits(n_tx)
        have = self._slices.shape[1]
        if needed <= have:
            return
        new_words = max(needed, have * 2)
        grown = np.zeros((self.m, new_words), dtype=np.uint64)
        grown[:, :have] = self._slices
        self._slices = grown

    # -- introspection --------------------------------------------------------

    @property
    def n_transactions(self) -> int:
        """Number of transactions the index covers."""
        return self._n_tx

    @property
    def epoch(self) -> int:
        """Monotonic version counter, bumped once per :meth:`insert`.

        Two reads of the index are guaranteed to see identical contents
        when their epochs match, so any derived value (a cached count, a
        mined pattern set) can be tagged with the epoch it was computed
        at and invalidated by comparison instead of by sweeping.  The
        epoch is *session-local*: it starts at 0 whenever an index
        becomes resident (constructed, loaded, folded, or concatenated)
        and is never persisted.
        """
        return self._epoch

    def __len__(self) -> int:
        return self._n_tx

    @property
    def n_words(self) -> int:
        """Words per slice covering the current transactions."""
        return bitvec.words_for_bits(self._n_tx)

    @property
    def size_bytes(self) -> int:
        """Logical on-disk size: m slices of ceil(n/8) bytes."""
        return self.m * ((self._n_tx + 7) // 8)

    @property
    def mean_signature_density(self) -> float:
        """Average fraction of signature bits set per transaction.

        Feeds the false-positive model of :mod:`repro.core.approximate`.
        """
        if self._n_tx == 0:
            return 0.0
        return self._signature_bits_total / (self._n_tx * self.m)

    @property
    def item_counts(self) -> ItemCountTable:
        """Exact 1-itemset counts (the DualFilter side table)."""
        return self._item_counts

    def items(self) -> list:
        """Every distinct item ever inserted, sorted."""
        return self._item_counts.items()

    def slice_words(self, position: int) -> np.ndarray:
        """Read-only view of one bit-slice, trimmed to live words."""
        if not 0 <= position < self.m:
            raise QueryError(f"slice {position} outside [0, {self.m})")
        view = self._slices[position, : self.n_words]
        view.setflags(write=False)
        return view

    # -- CountItemSet and friends ----------------------------------------------

    def signature_positions(self, items: Iterable) -> np.ndarray:
        """Set bit positions of the itemset's query signature."""
        positions = self.hash_family.itemset_positions(set(items))
        if positions.size == 0:
            raise QueryError("cannot form a signature for the empty itemset")
        return positions

    def resultant_vector(self, items: Iterable) -> np.ndarray:
        """The resultant bit vector of ``CountItemSet`` (Figure 1, step 2).

        Bit ``t`` set means transaction ``t`` *may* contain the itemset;
        Lemma 3 guarantees every true occurrence is set.
        """
        positions = self.signature_positions(items)
        self.stats.slice_reads += int(positions.size)
        n = self.n_words
        if n == 0:
            return np.empty(0, dtype=np.uint64)
        out = self._slices[positions[0], :n].copy()
        for pos in positions[1:]:
            out &= self._slices[pos, :n]
        return out

    def count_itemset(self, items: Iterable) -> int:
        """Algorithm ``CountItemSet``: estimated support of ``items``.

        Never an under-estimate (Lemma 4).
        """
        return bitvec.popcount(self.resultant_vector(items))

    def count_and_vector(self, items: Iterable) -> tuple[int, np.ndarray]:
        """Estimated support together with the resultant vector."""
        vector = self.resultant_vector(items)
        return bitvec.popcount(vector), vector

    def candidate_positions(self, items: Iterable) -> np.ndarray:
        """Transaction positions whose signatures match ``items``.

        This is the set the Probe refinement fetches from the database.
        """
        return bitvec.indices_of_set_bits(self.resultant_vector(items), self._n_tx)

    # -- filter hot path ---------------------------------------------------------

    def fresh_accumulator(self) -> np.ndarray:
        """All-ones accumulator for the empty itemset (tail bits clear)."""
        return bitvec.ones(self._n_tx)

    def and_positions_into(
        self, base: np.ndarray, positions: np.ndarray, out: np.ndarray
    ) -> None:
        """``out = base AND slices[positions]`` without heap churn.

        ``base`` and ``out`` may alias.  ``positions`` must be non-empty
        (every item sets at least one signature bit).
        """
        n = out.shape[0]
        self.stats.slice_reads += int(positions.size)
        np.bitwise_and(base, self._slices[positions[0], :n], out=out)
        for pos in positions[1:]:
            np.bitwise_and(out, self._slices[pos, :n], out=out)

    # -- constrained counting (Section 3.4 / 4.9) ----------------------------------

    def count_with_constraint(
        self, items: Iterable, constraint_words: np.ndarray
    ) -> int:
        """``CountItemSet`` ANDed with a constraint bit-slice.

        The constraint slice marks the transactions satisfying an
        arbitrary selection predicate; see
        :mod:`repro.core.constraints` for builders.
        """
        vector = self.resultant_vector(items)
        if constraint_words.shape[0] != vector.shape[0]:
            raise QueryError(
                f"constraint slice has {constraint_words.shape[0]} words, "
                f"index has {vector.shape[0]}"
            )
        return bitvec.popcount(vector & constraint_words)

    # -- folding (adaptive filtering, Section 3.1) -----------------------------------

    def fold(self, k_slices: int) -> "BBS":
        """OR-fold the ``m`` slices down to ``k_slices`` (the MemBBS).

        Slice ``j`` of the folded index is the OR of slices
        ``j, j + k_slices, j + 2*k_slices, ...`` — equivalently, a BBS
        whose hash functions are the originals composed with
        ``mod k_slices``.  The fold preserves the over-estimation
        property (extra OR-ed bits can only *raise* estimates), so all
        filter lemmas continue to hold on the folded index.
        """
        if not 1 <= k_slices <= self.m:
            raise ConfigurationError(
                f"fold width must be in [1, {self.m}], got {k_slices}"
            )
        folded = BBS.__new__(BBS)
        folded.hash_family = _FoldedHashFamily(self.hash_family, k_slices)
        folded.m = k_slices
        folded.k = self.k
        folded.stats = IOStats()
        folded._n_tx = self._n_tx
        folded._epoch = self._epoch  # same contents, same version
        folded._item_counts = self._item_counts  # exact counts are m-independent
        words = max(self._slices.shape[1], _INITIAL_CAPACITY_WORDS)
        matrix = np.zeros((k_slices, words), dtype=np.uint64)
        for row in range(self.m):
            matrix[row % k_slices, : self._slices.shape[1]] |= self._slices[row]
        folded._slices = matrix
        # Column t of the matrix *is* transaction t's folded signature, so
        # the exact post-fold bit total is one popcount — positions that
        # collide under ``mod k_slices`` merge instead of double-counting,
        # keeping mean_signature_density (and the saturation warning)
        # honest on folded indexes.
        folded._signature_bits_total = bitvec.popcount(matrix)
        return folded

    # -- partitioned building ------------------------------------------------------

    def concat(self, other: "BBS") -> "BBS":
        """A new index covering this index's transactions then ``other``'s.

        Both operands must share the hash family configuration.  Because
        a BBS is position-aligned with its database, concatenation is
        exactly what a partitioned build needs: index each partition
        independently (in parallel, on different machines, ...) and
        concatenate in partition order.
        """
        if self.hash_family.describe() != other.hash_family.describe():
            raise ConfigurationError(
                "cannot concatenate indexes with different hash families: "
                f"{self.hash_family.describe()} vs {other.hash_family.describe()}"
            )
        from repro.storage.diskbbs import _or_shifted

        total = self._n_tx + other._n_tx
        words = max(bitvec.words_for_bits(total), _INITIAL_CAPACITY_WORDS)
        matrix = np.zeros((self.m, words), dtype=np.uint64)
        if self._n_tx:
            matrix[:, : self.n_words] = self._slices[:, : self.n_words]
        if other._n_tx:
            _or_shifted(
                matrix, other._slices[:, : other.n_words],
                self._n_tx, other._n_tx,
            )
        counts = self._item_counts.as_dict()
        merged_counts = ItemCountTable(counts)
        merged_counts.merge(other._item_counts)
        combined = BBS._from_raw_state(
            self.hash_family,
            matrix,
            total,
            merged_counts.as_dict(),
            self._signature_bits_total + other._signature_bits_total,
        )
        return combined

    # -- persistence hand-off ------------------------------------------------------

    def save(self, path) -> None:
        """Persist to a slice file (see :mod:`repro.storage.slicefile`)."""
        from repro.storage.slicefile import save_bbs

        save_bbs(self, path)

    @classmethod
    def load(cls, path, *, stats: IOStats | None = None) -> "BBS":
        """Reload a slice file written by :meth:`save`."""
        from repro.storage.slicefile import load_bbs

        return load_bbs(path, stats=stats)

    # internal hooks used by the persistence layer ---------------------------------

    def _raw_state(self) -> tuple[np.ndarray, int, dict, int]:
        return (
            self._slices[:, : self.n_words],
            self._n_tx,
            self._item_counts.as_dict(),
            self._signature_bits_total,
        )

    @classmethod
    def _from_raw_state(
        cls,
        hash_family: HashFamily,
        slices: np.ndarray,
        n_tx: int,
        counts: dict,
        signature_bits_total: int = 0,
        stats: IOStats | None = None,
    ) -> "BBS":
        bbs = cls.__new__(cls)
        bbs.hash_family = hash_family
        bbs.m = hash_family.m
        bbs.k = hash_family.k
        bbs.stats = stats if stats is not None else IOStats()
        words = max(slices.shape[1], _INITIAL_CAPACITY_WORDS)
        matrix = np.zeros((hash_family.m, words), dtype=np.uint64)
        matrix[:, : slices.shape[1]] = slices
        bbs._slices = matrix
        bbs._n_tx = n_tx
        bbs._item_counts = ItemCountTable(counts)
        bbs._signature_bits_total = signature_bits_total
        bbs._epoch = 0  # session-local: a freshly resident index
        return bbs


class _FoldedHashFamily(HashFamily):
    """The base family's positions reduced ``mod k`` (MemBBS view)."""

    fixed_arity = False  # dedup/fold make the per-item weight variable

    def __init__(self, base: HashFamily, k_slices: int):
        super().__init__(k_slices, base.k)
        self._base = base

    def _canonical(self, item) -> str:  # noqa: D401 - delegate to the base family
        return self._base._canonical(item)

    def _raw_positions(self, key: str) -> list[int]:
        # Reuse the base family's (cached) positions rather than re-hashing.
        base_positions = self._base._cache.get(key)
        if base_positions is None:
            base_positions = self._base._raw_positions(key)
        # Distinct base positions frequently collide once reduced
        # ``mod k_slices``; deduplicate here so every consumer of the
        # raw list (arity checks, weight accounting) sees the true
        # per-item signature weight.
        return sorted({int(p) % self.m for p in base_positions})

    def describe(self) -> dict:
        """Persistence descriptor including the wrapped base family."""
        return {
            "kind": "_FoldedHashFamily",
            "m": self.m,
            "k": self.k,
            "base": self._base.describe(),
        }
