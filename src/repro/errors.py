"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type at an API boundary.  More specific subclasses
distinguish configuration problems from data-format problems so that a
caller can, for example, rebuild a corrupt index but surface a bad
parameter to its own user.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError, ValueError):
    """An invalid parameter was supplied (bad ``m``, ``k``, threshold, ...)."""


class StorageError(ReproError, IOError):
    """A persistent file (slice file, transaction file) is unreadable."""


class CorruptFileError(StorageError):
    """A persistent file failed its magic/version/checksum validation."""


class DatabaseMismatchError(ReproError):
    """An index and a database disagree (e.g. differing transaction counts)."""


class QueryError(ReproError, ValueError):
    """An ad-hoc query was malformed (empty itemset, bad constraint, ...)."""
