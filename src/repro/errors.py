"""Exception hierarchy for the ``repro`` library.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch one type at an API boundary.  More specific subclasses
distinguish configuration problems from data-format problems so that a
caller can, for example, rebuild a corrupt index but surface a bad
parameter to its own user.

Storage errors carry *structured* context — the offending ``path`` and,
where known, the byte ``offset`` of the damage — so that tools like
``repro-mine check``/``repair`` can report and act on the exact failure
site instead of re-parsing a message string.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class ConfigurationError(ReproError, ValueError):
    """An invalid parameter was supplied (bad ``m``, ``k``, threshold, ...)."""


class StorageError(ReproError, IOError):
    """A persistent file (slice file, transaction file) is unreadable.

    ``path`` and ``offset`` (byte position of the failure, when known)
    are attached as attributes for programmatic consumers.
    """

    def __init__(self, message: str = "", *, path=None, offset: int | None = None):
        super().__init__(message)
        self.path = str(path) if path is not None else None
        self.offset = offset


class CorruptFileError(StorageError):
    """A persistent file failed its magic/version/checksum validation."""


class TornWriteError(CorruptFileError):
    """An append was interrupted mid-write, leaving an uncommitted tail.

    Distinct from generic corruption: everything up to the last commit
    record is intact, and :func:`repro.storage.recovery.salvage_index`
    (or ``repro-mine repair``) can truncate the torn tail and restore a
    readable index without data loss beyond the uncommitted append.
    """


class RecoveryError(StorageError):
    """Salvage/repair could not restore a damaged file.

    Raised when the damage reaches state that cannot be reconstructed
    (e.g. the base header holding the hash-family parameters) and no
    companion transaction source was supplied to rebuild from.
    """


class DatabaseMismatchError(ReproError):
    """An index and a database disagree (e.g. differing transaction counts)."""


class ParallelExecutionError(ReproError, RuntimeError):
    """A parallel worker pool failed mid-run.

    Raised when a worker process dies (crash, OOM kill, ``os._exit``)
    or raises an unexpected non-library exception, so that callers of
    ``mine(..., workers=N)`` and ``build_partitioned`` see one typed
    error instead of a hung pool or a raw
    :class:`concurrent.futures.process.BrokenProcessPool`.
    """


class QueryError(ReproError, ValueError):
    """An ad-hoc query was malformed (empty itemset, bad constraint, ...)."""


class ServiceError(ReproError):
    """A pattern-query service request failed.

    Raised client-side when the server returns an error frame (the
    frame's ``type`` and ``message`` are preserved) or when the
    connection drops mid-request.

    Attributes
    ----------
    error_type:
        The wire-level error type (``"bad_request"``, ``"timeout"``,
        ``"overloaded"``, ``"shutting_down"``, ``"internal"``, ...).
    """

    def __init__(self, message: str, *, error_type: str = "internal"):
        super().__init__(message)
        self.error_type = error_type


class ServiceProtocolError(ServiceError):
    """A wire frame violated the protocol (bad length, not JSON, ...)."""

    def __init__(self, message: str):
        super().__init__(message, error_type="protocol")


class ConnectionClosedError(ServiceProtocolError):
    """The peer closed the connection cleanly between frames.

    Distinct from a mid-frame :class:`ServiceProtocolError`: the stream
    ended on a frame boundary, so no bytes were lost and a retrying
    client can safely reconnect and (for idempotent operations) resend.
    """


class ServiceTimeoutError(ServiceError):
    """A client-side deadline expired: connect, read, or whole-op.

    Raised by the blocking client when a socket operation exceeds its
    timeout, and by :class:`~repro.service.resilience.RetryingClient`
    when the per-operation deadline is exhausted across retries.
    """

    def __init__(self, message: str):
        super().__init__(message, error_type="timeout")


class DegradedError(ServiceError):
    """The server is in degraded read-only mode and refused a write.

    Counts and mining remain available; appends are rejected until an
    operator (or the supervisor) clears the condition via the
    ``recover`` op.  The wire-level error type is ``"degraded"``.
    """

    def __init__(self, message: str):
        super().__init__(message, error_type="degraded")


class PartialResultError(ServiceError):
    """A scatter-gather router could not reach every shard.

    Raised (and answered on the wire as error type ``"partial"``) when
    one or more shards — and their followers, where configured — were
    unreachable, so a complete answer over the full transaction range
    was impossible.  The router *fails* the request instead of serving
    an under-count; ``missing`` lists the uncovered ranges as
    ``(start, end, "host:port")`` tuples (``end`` is ``None`` for the
    open-ended tail range).
    """

    def __init__(self, message: str, *, missing=()):
        super().__init__(message, error_type="partial")
        self.missing = list(missing)


class OverloadedError(ServiceError):
    """The server shed the request at admission time.

    Answered on the wire as error type ``"overloaded"`` *without*
    dispatching the operation — nothing ran, so any request (even a
    tokenless ``append`` or a ``mine``) is safe to resend after
    backing off.  ``retry_after`` is the server's estimate, in
    seconds, of when capacity should free up; clients should wait at
    least that long before retrying.
    """

    def __init__(self, message: str, *, retry_after: float | None = None):
        super().__init__(message, error_type="overloaded")
        self.retry_after = retry_after


class CircuitOpenError(ServiceError):
    """The client's circuit breaker is open; the request was not sent.

    Raised locally — no bytes hit the network — when recent failures
    exceeded the breaker threshold and the cool-down has not elapsed.
    """

    def __init__(self, message: str):
        super().__init__(message, error_type="unavailable")
