"""A disk-resident, append-only BBS: the paper's persistence story, fully.

:class:`~repro.core.bbs.BBS` is the in-memory working form;
:mod:`repro.storage.slicefile` snapshots it.  But the paper's index is
*"dynamic and persistent"* — it lives on disk across sessions and
absorbs new transactions **without rewriting** what is already stored.
A transposed slice matrix makes in-place appends awkward (one new
transaction touches a bit in up to ``k·n`` slices scattered across the
file), so :class:`DiskBBS` stores the index as a log of immutable
**segments**:

* the *base header* fixes ``m``, ``k`` and the hash family;
* each *segment* is a row-major ``m × n_words`` slice matrix covering a
  contiguous transaction range, with its own item-count delta and CRC;
* fresh inserts accumulate in an in-memory *tail* (an ordinary BBS) and
  :meth:`DiskBBS.flush` appends them as one new segment — a pure
  ``O(tail)`` write, exactly the update cost the paper advertises.

Queries (``count_itemset``, candidate positions, constrained counts)
stream the needed slices segment by segment through a
:class:`~repro.storage.buffer.PageCache`, charging page reads only on
misses.  Mining loads the whole index once via :meth:`to_memory`
(one sequential read — the same cost the adaptive pipeline assumes).
"""

from __future__ import annotations

import json
import struct
import zlib
from pathlib import Path

import numpy as np

from repro.core import bitvec
from repro.core.bbs import BBS
from repro.core.counts import ItemCountTable
from repro.core.hashing import HashFamily, family_from_description
from repro.errors import (
    ConfigurationError,
    CorruptFileError,
    QueryError,
    StorageError,
)
from repro.storage.buffer import PageCache
from repro.storage.metrics import DEFAULT_PAGE_BYTES, IOStats
from repro.storage.slicefile import _decode_item, _encode_item

BASE_MAGIC = b"BBSD"
SEGMENT_MAGIC = b"SEG1"
FORMAT_VERSION = 1
_BASE_HEAD = struct.Struct("<4sII")      # magic, version, header json len
_SEG_HEAD = struct.Struct("<4sQII")      # magic, n_tx, n_words, counts len
_CRC = struct.Struct("<I")

#: Default number of buffered tail transactions before an automatic flush.
DEFAULT_FLUSH_THRESHOLD = 4096
DEFAULT_CACHE_PAGES = 256


class _Segment:
    """Directory entry for one on-disk segment."""

    __slots__ = ("offset", "matrix_offset", "n_tx", "n_words", "start_tx")

    def __init__(self, offset, matrix_offset, n_tx, n_words, start_tx):
        self.offset = offset
        self.matrix_offset = matrix_offset
        self.n_tx = n_tx
        self.n_words = n_words
        self.start_tx = start_tx


class DiskBBS:
    """Segmented on-disk BBS with an in-memory tail for appends."""

    def __init__(
        self,
        path,
        *,
        flush_threshold: int = DEFAULT_FLUSH_THRESHOLD,
        cache_pages: int = DEFAULT_CACHE_PAGES,
        page_bytes: int = DEFAULT_PAGE_BYTES,
        stats: IOStats | None = None,
    ):
        if flush_threshold < 1:
            raise ConfigurationError("flush_threshold must be >= 1")
        self.path = Path(path)
        self.flush_threshold = flush_threshold
        self.page_bytes = page_bytes
        self.stats = stats if stats is not None else IOStats()
        self._cache = PageCache(cache_pages, self.stats)
        self._file = None
        self._segments: list[_Segment] = []
        self._counts = ItemCountTable()
        self._signature_bits = 0
        self.hash_family: HashFamily | None = None
        self._tail: BBS | None = None

    # -- lifecycle -----------------------------------------------------------

    @classmethod
    def create(
        cls,
        path,
        m: int,
        k: int = 4,
        *,
        hash_family: HashFamily | None = None,
        **kwargs,
    ) -> "DiskBBS":
        """Initialise a fresh index file and open it."""
        if hash_family is None:
            from repro.core.hashing import MD5HashFamily

            hash_family = MD5HashFamily(m, k)
        if hash_family.m != m:
            raise ConfigurationError(
                f"hash family width {hash_family.m} does not match m={m}"
            )
        header = json.dumps(
            {"hash_family": hash_family.describe()},
            separators=(",", ":"),
        ).encode("utf-8")
        target = Path(path)
        with open(target, "wb") as fh:
            fh.write(_BASE_HEAD.pack(BASE_MAGIC, FORMAT_VERSION, len(header)))
            fh.write(header)
        return cls.open(target, **kwargs)

    @classmethod
    def open(cls, path, **kwargs) -> "DiskBBS":
        """Open an existing index file, scanning its segment directory."""
        store = cls(path, **kwargs)
        store._open()
        return store

    def _open(self) -> None:
        try:
            self._file = open(self.path, "r+b")
        except OSError as exc:
            raise StorageError(f"cannot open index {self.path}: {exc}") from exc
        head = self._file.read(_BASE_HEAD.size)
        if len(head) < _BASE_HEAD.size:
            raise CorruptFileError(f"{self.path} is truncated")
        magic, version, header_len = _BASE_HEAD.unpack(head)
        if magic != BASE_MAGIC:
            raise CorruptFileError(f"{self.path} is not a DiskBBS index")
        if version != FORMAT_VERSION:
            raise CorruptFileError(
                f"{self.path} is format version {version}, "
                f"expected {FORMAT_VERSION}"
            )
        try:
            header = json.loads(self._file.read(header_len))
            self.hash_family = family_from_description(header["hash_family"])
        except (json.JSONDecodeError, KeyError, TypeError) as exc:
            raise CorruptFileError(f"{self.path} base header malformed") from exc
        self._tail = BBS(self.m, self.k, hash_family=self.hash_family)
        self._scan_segments()

    def _scan_segments(self) -> None:
        start_tx = 0
        while True:
            offset = self._file.tell()
            head = self._file.read(_SEG_HEAD.size)
            if not head:
                break
            if len(head) < _SEG_HEAD.size:
                raise CorruptFileError(f"{self.path}: torn segment header")
            magic, n_tx, n_words, counts_len = _SEG_HEAD.unpack(head)
            if magic != SEGMENT_MAGIC:
                raise CorruptFileError(f"{self.path}: bad segment magic")
            counts_blob = self._file.read(counts_len)
            matrix_offset = self._file.tell()
            matrix_bytes = self.m * n_words * 8
            self._file.seek(matrix_bytes, 1)
            crc_blob = self._file.read(_CRC.size)
            if len(counts_blob) < counts_len or len(crc_blob) < _CRC.size:
                raise CorruptFileError(f"{self.path}: torn segment body")
            try:
                deltas = json.loads(counts_blob)
                for tagged, count in deltas["item_counts"]:
                    self._counts.merge(
                        ItemCountTable({_decode_item(tagged): int(count)})
                    )
                self._signature_bits += int(deltas.get("signature_bits", 0))
            except (json.JSONDecodeError, KeyError, TypeError) as exc:
                raise CorruptFileError(
                    f"{self.path}: segment counts malformed"
                ) from exc
            self._segments.append(
                _Segment(offset, matrix_offset, int(n_tx), int(n_words), start_tx)
            )
            start_tx += int(n_tx)

    def close(self) -> None:
        """Flush the tail and close the file handle."""
        if self._file is not None:
            if self._tail is not None and self._tail.n_transactions:
                self.flush()
            self._file.close()
            self._file = None
            self._tail = None

    def __enter__(self) -> "DiskBBS":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- introspection -----------------------------------------------------------

    @property
    def m(self) -> int:
        """Signature width in bits."""
        return self.hash_family.m

    @property
    def k(self) -> int:
        """Hash functions per item."""
        return self.hash_family.k

    @property
    def n_transactions(self) -> int:
        """Transactions covered: on-disk segments plus the tail."""
        on_disk = sum(seg.n_tx for seg in self._segments)
        return on_disk + (self._tail.n_transactions if self._tail else 0)

    def __len__(self) -> int:
        return self.n_transactions

    @property
    def n_segments(self) -> int:
        """Number of immutable on-disk segments."""
        return len(self._segments)

    @property
    def tail_size(self) -> int:
        """Transactions buffered in memory, not yet flushed."""
        return self._tail.n_transactions if self._tail else 0

    @property
    def item_counts(self) -> ItemCountTable:
        """Exact 1-itemset counts across disk segments and the tail."""
        merged = ItemCountTable(self._counts.as_dict())
        if self._tail is not None:
            merged.merge(self._tail.item_counts)
        return merged

    def items(self) -> list:
        """Every distinct item across segments and tail, sorted."""
        return self.item_counts.items()

    # -- updates -------------------------------------------------------------------

    def insert(self, items) -> int:
        """Append one transaction; auto-flushes past the threshold."""
        if self._tail is None:
            raise StorageError("index is closed")
        position = (
            sum(seg.n_tx for seg in self._segments) + self._tail.insert(items)
        )
        if self._tail.n_transactions >= self.flush_threshold:
            self.flush()
        return position

    def flush(self) -> None:
        """Write the in-memory tail as one immutable on-disk segment."""
        tail = self._tail
        if tail is None or tail.n_transactions == 0:
            return
        slices, n_tx, counts, sig_bits = tail._raw_state()
        counts_blob = json.dumps(
            {
                "item_counts": [
                    [_encode_item(item), count]
                    for item, count in sorted(
                        counts.items(), key=lambda pair: repr(pair[0])
                    )
                ],
                "signature_bits": sig_bits,
            },
            separators=(",", ":"),
        ).encode("utf-8")
        matrix = np.ascontiguousarray(slices, dtype="<u8").tobytes()
        segment = bytearray()
        segment += _SEG_HEAD.pack(
            SEGMENT_MAGIC, n_tx, slices.shape[1], len(counts_blob)
        )
        segment += counts_blob
        segment += matrix
        segment += _CRC.pack(zlib.crc32(segment) & 0xFFFFFFFF)

        self._file.seek(0, 2)
        offset = self._file.tell()
        self._file.write(segment)
        self._file.flush()
        self.stats.page_writes += _pages(len(segment), self.page_bytes)

        start_tx = sum(seg.n_tx for seg in self._segments)
        matrix_offset = offset + _SEG_HEAD.size + len(counts_blob)
        self._segments.append(
            _Segment(offset, matrix_offset, n_tx, slices.shape[1], start_tx)
        )
        for item, count in counts.items():
            self._counts.merge(ItemCountTable({item: count}))
        self._signature_bits += sig_bits
        self._tail = BBS(self.m, self.k, hash_family=self.hash_family)

    # -- slice access -----------------------------------------------------------------

    def _segment_slice(self, segment: _Segment, position: int) -> np.ndarray:
        """One slice row of one segment, through the page cache."""
        key = (segment.offset, position)

        def load():
            """Read one slice row from disk (miss path of the cache)."""
            row_bytes = segment.n_words * 8
            self._file.seek(segment.matrix_offset + position * row_bytes)
            blob = self._file.read(row_bytes)
            if len(blob) < row_bytes:
                raise CorruptFileError(f"{self.path}: slice read past EOF")
            # Charge the real page span of one slice row (>= 1 page).
            self.stats.page_reads += max(
                0, _pages(row_bytes, self.page_bytes) - 1
            )
            return np.frombuffer(blob, dtype="<u8").astype(np.uint64)

        self.stats.slice_reads += 1
        return self._cache.get(key, load)

    # -- queries -----------------------------------------------------------------------

    def count_itemset(self, items) -> int:
        """``CountItemSet`` across every segment plus the tail."""
        positions = self._positions(items)
        total = 0
        for segment in self._segments:
            total += bitvec.popcount(self._segment_and(segment, positions))
        if self._tail.n_transactions:
            total += self._tail.count_itemset(items)
        return total

    def candidate_positions(self, items) -> np.ndarray:
        """Global candidate transaction positions (for probing)."""
        positions = self._positions(items)
        pieces = []
        for segment in self._segments:
            hits = bitvec.indices_of_set_bits(
                self._segment_and(segment, positions), segment.n_tx
            )
            if hits.size:
                pieces.append(hits + segment.start_tx)
        if self._tail.n_transactions:
            tail_hits = self._tail.candidate_positions(items)
            if tail_hits.size:
                start = sum(seg.n_tx for seg in self._segments)
                pieces.append(tail_hits + start)
        if not pieces:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(pieces)

    def count_with_constraint(self, items, constraint_words: np.ndarray) -> int:
        """Constrained count; the constraint covers the global range."""
        expected = bitvec.words_for_bits(self.n_transactions)
        if constraint_words.shape[0] != expected:
            raise QueryError(
                f"constraint has {constraint_words.shape[0]} words, "
                f"index needs {expected}"
            )
        flagged = self.candidate_positions(items)
        return sum(
            1 for position in flagged
            if bitvec.get_bit(constraint_words, int(position))
        )

    def _positions(self, items) -> np.ndarray:
        positions = self.hash_family.itemset_positions(set(items))
        if positions.size == 0:
            raise QueryError("cannot form a signature for the empty itemset")
        return positions

    def _segment_and(self, segment: _Segment, positions: np.ndarray) -> np.ndarray:
        out = self._segment_slice(segment, int(positions[0])).copy()
        for position in positions[1:]:
            out &= self._segment_slice(segment, int(position))
        return out

    # -- maintenance -----------------------------------------------------------------------

    def compact(self) -> None:
        """Merge every segment (and the tail) into one segment.

        The segment log keeps appends cheap, but every query pays one
        slice read per segment; compaction restores single-segment
        query cost.  The rewrite is atomic: the merged index is written
        to a sibling temp file and renamed over the original.
        """
        merged = self.to_memory()
        header = json.dumps(
            {"hash_family": self.hash_family.describe()},
            separators=(",", ":"),
        ).encode("utf-8")
        tmp_path = self.path.with_suffix(self.path.suffix + ".compact")
        with open(tmp_path, "wb") as fh:
            fh.write(_BASE_HEAD.pack(BASE_MAGIC, FORMAT_VERSION, len(header)))
            fh.write(header)
        self._file.close()

        rewritten = DiskBBS(
            tmp_path,
            flush_threshold=self.flush_threshold,
            cache_pages=self._cache.capacity_pages,
            page_bytes=self.page_bytes,
            stats=self.stats,
        )
        rewritten._open()
        if merged.n_transactions:
            rewritten._tail = merged
            rewritten.flush()
        rewritten._file.close()

        tmp_path.replace(self.path)
        self._segments = []
        self._counts = ItemCountTable()
        self._signature_bits = 0
        self._cache.clear()
        self._open()

    # -- bulk load for mining --------------------------------------------------------------

    def to_memory(self) -> BBS:
        """Materialise the whole index as an in-memory BBS (one read pass).

        This is the load the mining algorithms assume; the returned BBS
        covers disk segments *and* the unflushed tail, in insert order.
        """
        total_words = bitvec.words_for_bits(self.n_transactions)
        matrix = np.zeros((self.m, max(total_words, 1)), dtype=np.uint64)
        bit_offset = 0
        for segment in self._segments:
            self._file.seek(segment.matrix_offset)
            blob = self._file.read(self.m * segment.n_words * 8)
            seg_matrix = np.frombuffer(blob, dtype="<u8").reshape(
                self.m, segment.n_words
            )
            _or_shifted(matrix, seg_matrix, bit_offset, segment.n_tx)
            bit_offset += segment.n_tx
            self.stats.page_reads += _pages(len(blob), self.page_bytes)
        if self._tail.n_transactions:
            tail_slices, tail_n, _, _ = self._tail._raw_state()
            _or_shifted(matrix, tail_slices, bit_offset, tail_n)
        counts = self.item_counts.as_dict()
        return BBS._from_raw_state(
            self.hash_family, matrix, self.n_transactions, counts,
            self._signature_bits + (
                self._tail._signature_bits_total if self._tail else 0
            ),
        )


def _or_shifted(
    target: np.ndarray, source: np.ndarray, bit_offset: int, n_bits: int
) -> None:
    """OR ``source``'s first ``n_bits`` columns into ``target`` at an offset.

    Segments start on arbitrary bit boundaries, so each source word may
    straddle two target words.
    """
    word_offset, shift = divmod(bit_offset, bitvec.WORD_BITS)
    n_words = bitvec.words_for_bits(n_bits)
    chunk = source[:, :n_words]
    total_words = target.shape[1]
    if shift == 0:
        end = min(word_offset + n_words, total_words)
        target[:, word_offset:end] |= chunk[:, : end - word_offset]
        return
    left = (chunk << np.uint64(shift)).astype(np.uint64)
    right = (chunk >> np.uint64(bitvec.WORD_BITS - shift)).astype(np.uint64)
    left_end = min(word_offset + n_words, total_words)
    target[:, word_offset:left_end] |= left[:, : left_end - word_offset]
    right_start = word_offset + 1
    right_end = min(right_start + n_words, total_words)
    if right_end > right_start:
        # Any bits the clip would drop are beyond n_bits and thus zero.
        target[:, right_start:right_end] |= right[:, : right_end - right_start]


def _pages(n_bytes: int, page_bytes: int) -> int:
    if n_bytes <= 0:
        return 0
    return (n_bytes + page_bytes - 1) // page_bytes
