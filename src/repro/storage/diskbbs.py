"""A disk-resident, append-only BBS: the paper's persistence story, fully.

:class:`~repro.core.bbs.BBS` is the in-memory working form;
:mod:`repro.storage.slicefile` snapshots it.  But the paper's index is
*"dynamic and persistent"* — it lives on disk across sessions and
absorbs new transactions **without rewriting** what is already stored.
A transposed slice matrix makes in-place appends awkward (one new
transaction touches a bit in up to ``k·n`` slices scattered across the
file), so :class:`DiskBBS` stores the index as a log of immutable
**segments**:

* the *base header* fixes ``m``, ``k`` and the hash family;
* each *segment* is a row-major ``m × n_words`` slice matrix covering a
  contiguous transaction range, with its own item-count delta and CRC;
* fresh inserts accumulate in an in-memory *tail* (an ordinary BBS) and
  :meth:`DiskBBS.flush` appends them as one new segment — a pure
  ``O(tail)`` write, exactly the update cost the paper advertises.

Queries (``count_itemset``, candidate positions, constrained counts)
stream the needed slices segment by segment through a
:class:`~repro.storage.buffer.PageCache`, charging page reads only on
misses.  Mining loads the whole index once via :meth:`to_memory`
(one sequential read — the same cost the adaptive pipeline assumes).

**Crash safety (format version 2).**  :meth:`flush` is a WAL-style
durable append: the segment bytes are written and fsynced *before* a
small CRC-sealed commit record is written and fsynced.  The commit
record is the linearisation point — a crash at any byte of the protocol
leaves either a fully committed segment or a torn, uncommitted tail
that :func:`repro.storage.recovery.salvage_index` (or
:meth:`DiskBBS.recover`, or ``repro-mine repair``) can truncate away
without touching committed data.  Version-1 files (no commit records)
are still readable; new appends always use the durable protocol.
"""

from __future__ import annotations

import json
import struct
import zlib
from pathlib import Path

import numpy as np

from repro.core import bitvec
from repro.core.bbs import BBS
from repro.core.counts import ItemCountTable
from repro.core.hashing import HashFamily, family_from_description
from repro.errors import (
    ConfigurationError,
    CorruptFileError,
    QueryError,
    StorageError,
    TornWriteError,
)
from repro.storage.buffer import PageCache
from repro.storage.durable import durable_replace, fsync_dir, fsync_file
from repro.storage.metrics import DEFAULT_PAGE_BYTES, IOStats
from repro.storage.slicefile import _decode_item, _encode_item

BASE_MAGIC = b"BBSD"
SEGMENT_MAGIC = b"SEG1"
COMMIT_MAGIC = b"CMT1"
FORMAT_VERSION = 2
#: Format versions this reader understands (1 = pre-commit-record logs).
READABLE_VERSIONS = (1, 2)
_BASE_HEAD = struct.Struct("<4sII")      # magic, version, header json len
_SEG_HEAD = struct.Struct("<4sQII")      # magic, n_tx, n_words, counts len
_COMMIT = struct.Struct("<4sQQI")        # magic, segment offset, segment len, crc
_CRC = struct.Struct("<I")


def commit_record(segment_offset: int, segment_len: int) -> bytes:
    """The CRC-sealed commit record that finalises one durable append."""
    body = COMMIT_MAGIC + struct.pack("<QQ", segment_offset, segment_len)
    return body + _CRC.pack(zlib.crc32(body) & 0xFFFFFFFF)


def base_header_block(header_json: bytes) -> bytes:
    """The version-2 file prologue: fixed head, JSON header, CRC seal.

    Version 2 seals the base header with its own CRC so bit rot in the
    hash-family parameters is detected instead of silently yielding an
    index that hashes differently than the one that was written.
    """
    head = _BASE_HEAD.pack(BASE_MAGIC, FORMAT_VERSION, len(header_json))
    seal = _CRC.pack(zlib.crc32(head + header_json) & 0xFFFFFFFF)
    return head + header_json + seal

#: Default number of buffered tail transactions before an automatic flush.
DEFAULT_FLUSH_THRESHOLD = 4096
DEFAULT_CACHE_PAGES = 256


class _Segment:
    """Directory entry for one on-disk segment."""

    __slots__ = ("offset", "matrix_offset", "n_tx", "n_words", "start_tx")

    def __init__(self, offset, matrix_offset, n_tx, n_words, start_tx):
        self.offset = offset
        self.matrix_offset = matrix_offset
        self.n_tx = n_tx
        self.n_words = n_words
        self.start_tx = start_tx


class DiskBBS:
    """Segmented on-disk BBS with an in-memory tail for appends."""

    def __init__(
        self,
        path,
        *,
        flush_threshold: int = DEFAULT_FLUSH_THRESHOLD,
        cache_pages: int = DEFAULT_CACHE_PAGES,
        page_bytes: int = DEFAULT_PAGE_BYTES,
        stats: IOStats | None = None,
    ):
        if flush_threshold < 1:
            raise ConfigurationError("flush_threshold must be >= 1")
        self.path = Path(path)
        self.flush_threshold = flush_threshold
        self.page_bytes = page_bytes
        self.stats = stats if stats is not None else IOStats()
        self._cache = PageCache(cache_pages, self.stats)
        self._file = None
        self._segments: list[_Segment] = []
        self._counts = ItemCountTable()
        self._signature_bits = 0
        self.hash_family: HashFamily | None = None
        self._tail: BBS | None = None
        self._epoch = 0
        self._format_version = FORMAT_VERSION
        self._base_length = 0
        #: The :class:`~repro.storage.recovery.RecoveryReport` of the
        #: salvage pass that opened this store, when :meth:`recover` was
        #: used; ``None`` for a plain :meth:`open`.
        self.last_recovery = None

    # -- lifecycle -----------------------------------------------------------

    @classmethod
    def create(
        cls,
        path,
        m: int,
        k: int = 4,
        *,
        hash_family: HashFamily | None = None,
        **kwargs,
    ) -> "DiskBBS":
        """Initialise a fresh index file and open it."""
        if hash_family is None:
            from repro.core.hashing import MD5HashFamily

            hash_family = MD5HashFamily(m, k)
        if hash_family.m != m:
            raise ConfigurationError(
                f"hash family width {hash_family.m} does not match m={m}"
            )
        header = json.dumps(
            {"hash_family": hash_family.describe()},
            separators=(",", ":"),
        ).encode("utf-8")
        target = Path(path)
        with open(target, "wb") as fh:
            fh.write(base_header_block(header))
            fsync_file(fh)
        fsync_dir(target.parent)
        return cls.open(target, **kwargs)

    @classmethod
    def open(cls, path, **kwargs) -> "DiskBBS":
        """Open an existing index file, scanning its segment directory.

        The scan is strict: a torn tail raises
        :class:`~repro.errors.TornWriteError` and other structural
        damage raises :class:`~repro.errors.CorruptFileError`.  Use
        :meth:`recover` to salvage instead of refusing.
        """
        store = cls(path, **kwargs)
        store._open()
        return store

    @classmethod
    def recover(cls, path, db=None, *, quarantine: bool = True, **kwargs) -> "DiskBBS":
        """Salvage a possibly-damaged index file, then open it.

        Torn (uncommitted) tails are truncated; corrupt committed
        segments are quarantined and, when a companion transaction
        source ``db`` is supplied (a path to a transaction file, a
        :class:`~repro.data.diskdb.DiskDatabase`, or any iterable of
        transactions), the lost suffix is rebuilt from it.  The
        :class:`~repro.storage.recovery.RecoveryReport` describing what
        was done is attached as :attr:`last_recovery`.
        """
        from repro.storage.recovery import salvage_index

        store = cls(path, **kwargs)
        report = salvage_index(
            path, db=db, quarantine=quarantine, stats=store.stats
        )
        store._open()
        store.last_recovery = report
        return store

    def _open(self) -> None:
        try:
            self._file = open(self.path, "r+b")
        except OSError as exc:
            raise StorageError(
                f"cannot open index {self.path}: {exc}", path=self.path
            ) from exc
        head = self._file.read(_BASE_HEAD.size)
        if len(head) < _BASE_HEAD.size:
            raise CorruptFileError(
                f"{self.path} is truncated at byte {len(head)} "
                f"(base header needs {_BASE_HEAD.size} bytes)",
                path=self.path, offset=0,
            )
        magic, version, header_len = _BASE_HEAD.unpack(head)
        if magic != BASE_MAGIC:
            raise CorruptFileError(
                f"{self.path} is not a DiskBBS index (magic {magic!r} "
                f"at offset 0)", path=self.path, offset=0,
            )
        if version not in READABLE_VERSIONS:
            raise CorruptFileError(
                f"{self.path} is format version {version}, this library "
                f"reads versions {READABLE_VERSIONS}",
                path=self.path, offset=4,
            )
        self._format_version = version
        header_blob = self._file.read(header_len)
        if version >= 2:
            seal_offset = _BASE_HEAD.size + header_len
            seal = self._file.read(_CRC.size)
            actual = zlib.crc32(head + header_blob) & 0xFFFFFFFF
            if len(seal) < _CRC.size or _CRC.unpack(seal)[0] != actual:
                raise CorruptFileError(
                    f"{self.path}: base header failed its CRC seal at "
                    f"offset {seal_offset}", path=self.path, offset=seal_offset,
                )
        try:
            header = json.loads(header_blob)
            self.hash_family = family_from_description(header["hash_family"])
        except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
            raise CorruptFileError(
                f"{self.path}: base header JSON at offset {_BASE_HEAD.size} "
                f"is malformed: {exc}",
                path=self.path, offset=_BASE_HEAD.size,
            ) from exc
        self._tail = BBS(self.m, self.k, hash_family=self.hash_family)
        self._base_length = self._file.tell()
        self._scan_segments()

    def _scan_segments(self) -> None:
        start_tx = 0
        while True:
            offset = self._file.tell()
            head = self._file.read(_SEG_HEAD.size)
            if not head:
                break
            if len(head) < _SEG_HEAD.size:
                raise TornWriteError(
                    f"{self.path}: torn segment header at offset {offset} "
                    f"(uncommitted append; run `repro-mine repair` to salvage)",
                    path=self.path, offset=offset,
                )
            magic, n_tx, n_words, counts_len = _SEG_HEAD.unpack(head)
            if magic != SEGMENT_MAGIC:
                raise CorruptFileError(
                    f"{self.path}: bad segment magic {magic!r} at offset "
                    f"{offset}", path=self.path, offset=offset,
                )
            counts_blob = self._file.read(counts_len)
            matrix_offset = self._file.tell()
            matrix_bytes = self.m * n_words * 8
            self._file.seek(matrix_bytes, 1)
            crc_blob = self._file.read(_CRC.size)
            if len(counts_blob) < counts_len or len(crc_blob) < _CRC.size:
                raise TornWriteError(
                    f"{self.path}: torn segment body at offset {offset} "
                    f"(uncommitted append; run `repro-mine repair` to salvage)",
                    path=self.path, offset=offset,
                )
            segment_end = matrix_offset + matrix_bytes + _CRC.size
            if self._format_version >= 2:
                self._read_commit(offset, segment_end)
            try:
                deltas = json.loads(counts_blob)
                for tagged, count in deltas["item_counts"]:
                    self._counts.merge(
                        ItemCountTable(
                            {_decode_item(tagged, self.path): int(count)}
                        )
                    )
                self._signature_bits += int(deltas.get("signature_bits", 0))
            except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
                raise CorruptFileError(
                    f"{self.path}: segment counts at offset "
                    f"{offset + _SEG_HEAD.size} malformed: {exc}",
                    path=self.path, offset=offset + _SEG_HEAD.size,
                ) from exc
            self._segments.append(
                _Segment(offset, matrix_offset, int(n_tx), int(n_words), start_tx)
            )
            start_tx += int(n_tx)

    def _read_commit(self, segment_offset: int, segment_end: int) -> None:
        """Consume and validate the commit record sealing one segment."""
        blob = self._file.read(_COMMIT.size)
        if len(blob) < _COMMIT.size:
            raise TornWriteError(
                f"{self.path}: segment at offset {segment_offset} has no "
                f"commit record (uncommitted append; run `repro-mine "
                f"repair` to salvage)",
                path=self.path, offset=segment_offset,
            )
        magic, offset, seg_len, crc = _COMMIT.unpack(blob)
        sealed = zlib.crc32(blob[: -_CRC.size]) & 0xFFFFFFFF
        if magic != COMMIT_MAGIC or sealed != crc:
            raise TornWriteError(
                f"{self.path}: torn commit record at offset {segment_end} "
                f"(uncommitted append; run `repro-mine repair` to salvage)",
                path=self.path, offset=segment_end,
            )
        if offset != segment_offset or seg_len != segment_end - segment_offset:
            raise CorruptFileError(
                f"{self.path}: commit record at offset {segment_end} "
                f"seals offset {offset} (+{seg_len}), but its segment "
                f"spans offset {segment_offset} "
                f"(+{segment_end - segment_offset})",
                path=self.path, offset=segment_end,
            )

    def close(self) -> None:
        """Flush the tail and close the file handle."""
        if self._file is not None:
            if self._tail is not None and self._tail.n_transactions:
                self.flush()
            self._file.close()
            self._file = None
            self._tail = None

    def __enter__(self) -> "DiskBBS":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- introspection -----------------------------------------------------------

    @property
    def m(self) -> int:
        """Signature width in bits."""
        return self.hash_family.m

    @property
    def k(self) -> int:
        """Hash functions per item."""
        return self.hash_family.k

    @property
    def n_transactions(self) -> int:
        """Transactions covered: on-disk segments plus the tail."""
        on_disk = sum(seg.n_tx for seg in self._segments)
        return on_disk + (self._tail.n_transactions if self._tail else 0)

    @property
    def epoch(self) -> int:
        """Monotonic version counter, bumped once per :meth:`insert`.

        Session-local (starts at 0 on open, never persisted) with the
        same contract as :attr:`repro.core.bbs.BBS.epoch`: equal epochs
        imply identical index contents, so epoch-tagged derived values
        can be invalidated by comparison.  Tracked on the store itself —
        not the in-memory tail, which is replaced wholesale on every
        :meth:`flush`.
        """
        return self._epoch

    def __len__(self) -> int:
        return self.n_transactions

    @property
    def n_segments(self) -> int:
        """Number of immutable on-disk segments."""
        return len(self._segments)

    @property
    def tail_size(self) -> int:
        """Transactions buffered in memory, not yet flushed."""
        return self._tail.n_transactions if self._tail else 0

    @property
    def item_counts(self) -> ItemCountTable:
        """Exact 1-itemset counts across disk segments and the tail."""
        merged = ItemCountTable(self._counts.as_dict())
        if self._tail is not None:
            merged.merge(self._tail.item_counts)
        return merged

    def items(self) -> list:
        """Every distinct item across segments and tail, sorted."""
        return self.item_counts.items()

    # -- segment export (snapshot shipping) ----------------------------------------

    @property
    def base_length(self) -> int:
        """Byte length of the base-header prologue (magic + JSON + seal)."""
        return self._base_length

    def segment_span(self, position: int) -> tuple[int, int]:
        """``(offset, length)`` of one committed segment's full byte span.

        The span covers everything a follower must receive to replay the
        segment verbatim: header, counts blob, matrix, body CRC and (for
        format v2) the commit record.
        """
        if not 0 <= position < len(self._segments):
            raise StorageError(
                f"segment {position} out of range [0, "
                f"{len(self._segments)})", path=self.path,
            )
        seg = self._segments[position]
        length = (
            (seg.matrix_offset - seg.offset)
            + self.m * seg.n_words * 8
            + _CRC.size
        )
        if self._format_version >= 2:
            length += _COMMIT.size
        return seg.offset, length

    def segment_info(self, position: int) -> dict:
        """Manifest-facing facts about one committed segment."""
        offset, length = self.segment_span(position)
        seg = self._segments[position]
        return {
            "index": position,
            "offset": offset,
            "length": length,
            "n_tx": seg.n_tx,
            "start_tx": seg.start_tx,
        }

    def read_span(self, offset: int, length: int) -> bytes:
        """Raw bytes of an arbitrary file span (snapshot shipping only)."""
        if self._file is None:
            raise StorageError("index is closed", path=self.path)
        if offset < 0 or length < 0:
            raise StorageError(
                f"invalid span ({offset}, {length})", path=self.path
            )
        self._file.seek(offset)
        blob = self._file.read(length)
        if len(blob) < length:
            raise CorruptFileError(
                f"{self.path}: span read at offset {offset} ran past EOF "
                f"({len(blob)} of {length} bytes)",
                path=self.path, offset=offset,
            )
        self.stats.page_reads += _pages(length, self.page_bytes)
        return blob

    @property
    def sealed_item_counts(self) -> ItemCountTable:
        """Exact 1-itemset counts across committed segments only (no tail)."""
        return ItemCountTable(self._counts.as_dict())

    @property
    def sealed_transactions(self) -> int:
        """Transactions covered by committed on-disk segments (no tail)."""
        return sum(seg.n_tx for seg in self._segments)

    # -- updates -------------------------------------------------------------------

    def insert(self, items) -> int:
        """Append one transaction; auto-flushes past the threshold."""
        if self._tail is None:
            raise StorageError("index is closed", path=self.path)
        position = (
            sum(seg.n_tx for seg in self._segments) + self._tail.insert(items)
        )
        self._epoch += 1
        if self._tail.n_transactions >= self.flush_threshold:
            self.flush()
        return position

    def flush(self) -> None:
        """Durably append the in-memory tail as one immutable segment.

        The append is a two-barrier protocol:

        1. segment bytes (header, counts, matrix, CRC) — then fsync;
        2. a CRC-sealed commit record — then fsync.

        A crash before the second fsync leaves an uncommitted tail that
        open-time scanning flags as :class:`~repro.errors.TornWriteError`
        and :meth:`recover` truncates; committed segments are never at
        risk.  On an I/O error (``ENOSPC``, ``EIO``) the file is rolled
        back to its pre-append length and the tail stays buffered in
        memory, so a later ``flush()`` can retry with no data loss.
        """
        tail = self._tail
        if tail is None or tail.n_transactions == 0:
            return
        slices, n_tx, counts, sig_bits = tail._raw_state()
        counts_blob = json.dumps(
            {
                "item_counts": [
                    [_encode_item(item, self.path), count]
                    for item, count in sorted(
                        counts.items(), key=lambda pair: repr(pair[0])
                    )
                ],
                "signature_bits": sig_bits,
            },
            separators=(",", ":"),
        ).encode("utf-8")
        matrix = np.ascontiguousarray(slices, dtype="<u8").tobytes()
        segment = bytearray()
        segment += _SEG_HEAD.pack(
            SEGMENT_MAGIC, n_tx, slices.shape[1], len(counts_blob)
        )
        segment += counts_blob
        segment += matrix
        segment += _CRC.pack(zlib.crc32(segment) & 0xFFFFFFFF)

        self._file.seek(0, 2)
        offset = self._file.tell()
        try:
            self._file.write(segment)
            fsync_file(self._file, self.stats)       # barrier 1: payload durable
            self._file.write(commit_record(offset, len(segment)))
            fsync_file(self._file, self.stats)       # barrier 2: commit point
        except OSError as exc:
            # Roll the log back to its pre-append length so it stays
            # readable; the tail remains buffered for a retry.
            try:
                self._file.truncate(offset)
                self._file.seek(0, 2)
            except OSError:
                pass  # recover()/salvage will drop the torn tail instead
            raise StorageError(
                f"durable append to {self.path} failed at offset "
                f"{offset}: {exc}", path=self.path, offset=offset,
            ) from exc
        self.stats.page_writes += _pages(
            len(segment) + _COMMIT.size, self.page_bytes
        )

        start_tx = sum(seg.n_tx for seg in self._segments)
        matrix_offset = offset + _SEG_HEAD.size + len(counts_blob)
        self._segments.append(
            _Segment(offset, matrix_offset, n_tx, slices.shape[1], start_tx)
        )
        for item, count in counts.items():
            self._counts.merge(ItemCountTable({item: count}))
        self._signature_bits += sig_bits
        self._tail = BBS(self.m, self.k, hash_family=self.hash_family)

    def verify_segment(self, position: int) -> str | None:
        """Re-read one committed segment from disk and check its seals.

        The scrubber's unit of work: verifies the segment body CRC and
        (format v2) the commit record against the *current bytes on
        disk*, deliberately bypassing the page cache so bit rot is
        caught even for rows a hot cache would never re-read.  Returns
        a problem description, or ``None`` when the segment is sound.
        ``position`` indexes :attr:`n_segments`; out-of-range positions
        are treated as sound (the directory may have grown/shrunk
        between scheduling and checking).
        """
        if self._file is None:
            return None
        if not 0 <= position < len(self._segments):
            return None
        seg = self._segments[position]
        body_len = (seg.matrix_offset - seg.offset) + self.m * seg.n_words * 8
        total = body_len + _CRC.size
        if self._format_version >= 2:
            total += _COMMIT.size
        self._file.seek(seg.offset)
        blob = self._file.read(total)
        self.stats.page_reads += _pages(total, self.page_bytes)
        if len(blob) < body_len + _CRC.size:
            return (
                f"segment {position} at offset {seg.offset} is truncated "
                f"({len(blob)} of {total} bytes)"
            )
        (stored_crc,) = _CRC.unpack_from(blob, body_len)
        actual_crc = zlib.crc32(blob[:body_len]) & 0xFFFFFFFF
        if stored_crc != actual_crc:
            return (
                f"segment {position} at offset {seg.offset} failed its "
                f"body CRC (stored {stored_crc:#010x}, computed "
                f"{actual_crc:#010x})"
            )
        if self._format_version >= 2:
            commit_blob = blob[body_len + _CRC.size:]
            if len(commit_blob) < _COMMIT.size:
                return (
                    f"segment {position} at offset {seg.offset} lost its "
                    f"commit record"
                )
            magic, offset, seg_len, crc = _COMMIT.unpack(commit_blob)
            sealed = zlib.crc32(commit_blob[: -_CRC.size]) & 0xFFFFFFFF
            if (
                magic != COMMIT_MAGIC
                or sealed != crc
                or offset != seg.offset
                or seg_len != body_len + _CRC.size
            ):
                return (
                    f"segment {position} at offset {seg.offset} has a "
                    f"damaged commit record"
                )
        return None

    # -- slice access -----------------------------------------------------------------

    def _segment_slice(self, segment: _Segment, position: int) -> np.ndarray:
        """One slice row of one segment, through the page cache."""
        key = (segment.offset, position)

        def load():
            """Read one slice row from disk (miss path of the cache)."""
            row_bytes = segment.n_words * 8
            row_offset = segment.matrix_offset + position * row_bytes
            self._file.seek(row_offset)
            blob = self._file.read(row_bytes)
            if len(blob) < row_bytes:
                raise CorruptFileError(
                    f"{self.path}: slice read at offset {row_offset} ran "
                    f"past EOF ({len(blob)} of {row_bytes} bytes)",
                    path=self.path, offset=row_offset,
                )
            # Charge the real page span of one slice row (>= 1 page).
            self.stats.page_reads += max(
                0, _pages(row_bytes, self.page_bytes) - 1
            )
            return np.frombuffer(blob, dtype="<u8").astype(np.uint64)

        self.stats.slice_reads += 1
        return self._cache.get(key, load)

    # -- queries -----------------------------------------------------------------------

    def count_itemset(self, items) -> int:
        """``CountItemSet`` across every segment plus the tail."""
        positions = self._positions(items)
        total = 0
        for segment in self._segments:
            total += bitvec.popcount(self._segment_and(segment, positions))
        if self._tail.n_transactions:
            total += self._tail.count_itemset(items)
        return total

    def candidate_positions(self, items) -> np.ndarray:
        """Global candidate transaction positions (for probing)."""
        positions = self._positions(items)
        pieces = []
        for segment in self._segments:
            hits = bitvec.indices_of_set_bits(
                self._segment_and(segment, positions), segment.n_tx
            )
            if hits.size:
                pieces.append(hits + segment.start_tx)
        if self._tail.n_transactions:
            tail_hits = self._tail.candidate_positions(items)
            if tail_hits.size:
                start = sum(seg.n_tx for seg in self._segments)
                pieces.append(tail_hits + start)
        if not pieces:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(pieces)

    def count_with_constraint(self, items, constraint_words: np.ndarray) -> int:
        """Constrained count; the constraint covers the global range."""
        expected = bitvec.words_for_bits(self.n_transactions)
        if constraint_words.shape[0] != expected:
            raise QueryError(
                f"constraint has {constraint_words.shape[0]} words, "
                f"index needs {expected}"
            )
        flagged = self.candidate_positions(items)
        return sum(
            1 for position in flagged
            if bitvec.get_bit(constraint_words, int(position))
        )

    def _positions(self, items) -> np.ndarray:
        positions = self.hash_family.itemset_positions(set(items))
        if positions.size == 0:
            raise QueryError("cannot form a signature for the empty itemset")
        return positions

    def _segment_and(self, segment: _Segment, positions: np.ndarray) -> np.ndarray:
        out = self._segment_slice(segment, int(positions[0])).copy()
        for position in positions[1:]:
            out &= self._segment_slice(segment, int(position))
        return out

    # -- maintenance -----------------------------------------------------------------------

    def compact(self) -> None:
        """Merge every segment (and the tail) into one segment.

        The segment log keeps appends cheap, but every query pays one
        slice read per segment; compaction restores single-segment
        query cost.  The rewrite is crash-atomic: the merged index is
        written to a sibling temp file, fsynced, and durably renamed
        over the original (with a directory fsync), so a crash at any
        point leaves either the old or the new index — never a ruin.
        """
        merged = self.to_memory()
        header = json.dumps(
            {"hash_family": self.hash_family.describe()},
            separators=(",", ":"),
        ).encode("utf-8")
        tmp_path = self.path.with_suffix(self.path.suffix + ".compact")
        with open(tmp_path, "wb") as fh:
            fh.write(base_header_block(header))
        self._file.close()

        rewritten = DiskBBS(
            tmp_path,
            flush_threshold=self.flush_threshold,
            cache_pages=self._cache.capacity_pages,
            page_bytes=self.page_bytes,
            stats=self.stats,
        )
        rewritten._open()
        if merged.n_transactions:
            rewritten._tail = merged
            rewritten.flush()
        fsync_file(rewritten._file, self.stats)
        rewritten._file.close()

        durable_replace(tmp_path, self.path, self.stats)
        self._segments = []
        self._counts = ItemCountTable()
        self._signature_bits = 0
        self._cache.clear()
        self._open()

    # -- bulk load for mining --------------------------------------------------------------

    def to_memory(self) -> BBS:
        """Materialise the whole index as an in-memory BBS (one read pass).

        This is the load the mining algorithms assume; the returned BBS
        covers disk segments *and* the unflushed tail, in insert order.
        """
        total_words = bitvec.words_for_bits(self.n_transactions)
        matrix = np.zeros((self.m, max(total_words, 1)), dtype=np.uint64)
        bit_offset = 0
        for segment in self._segments:
            self._file.seek(segment.matrix_offset)
            matrix_bytes = self.m * segment.n_words * 8
            blob = self._file.read(matrix_bytes)
            if len(blob) < matrix_bytes:
                raise CorruptFileError(
                    f"{self.path}: segment matrix at offset "
                    f"{segment.matrix_offset} ran past EOF "
                    f"({len(blob)} of {matrix_bytes} bytes)",
                    path=self.path, offset=segment.matrix_offset,
                )
            seg_matrix = np.frombuffer(blob, dtype="<u8").reshape(
                self.m, segment.n_words
            )
            _or_shifted(matrix, seg_matrix, bit_offset, segment.n_tx)
            bit_offset += segment.n_tx
            self.stats.page_reads += _pages(len(blob), self.page_bytes)
        if self._tail.n_transactions:
            tail_slices, tail_n, _, _ = self._tail._raw_state()
            _or_shifted(matrix, tail_slices, bit_offset, tail_n)
        counts = self.item_counts.as_dict()
        return BBS._from_raw_state(
            self.hash_family, matrix, self.n_transactions, counts,
            self._signature_bits + (
                self._tail._signature_bits_total if self._tail else 0
            ),
        )


def _or_shifted(
    target: np.ndarray, source: np.ndarray, bit_offset: int, n_bits: int
) -> None:
    """OR ``source``'s first ``n_bits`` columns into ``target`` at an offset.

    Segments start on arbitrary bit boundaries, so each source word may
    straddle two target words.
    """
    word_offset, shift = divmod(bit_offset, bitvec.WORD_BITS)
    n_words = bitvec.words_for_bits(n_bits)
    chunk = source[:, :n_words]
    total_words = target.shape[1]
    if shift == 0:
        end = min(word_offset + n_words, total_words)
        target[:, word_offset:end] |= chunk[:, : end - word_offset]
        return
    left = (chunk << np.uint64(shift)).astype(np.uint64)
    right = (chunk >> np.uint64(bitvec.WORD_BITS - shift)).astype(np.uint64)
    left_end = min(word_offset + n_words, total_words)
    target[:, word_offset:left_end] |= left[:, : left_end - word_offset]
    right_start = word_offset + 1
    right_end = min(right_start + n_words, total_words)
    if right_end > right_start:
        # Any bits the clip would drop are beyond n_bits and thus zero.
        target[:, right_start:right_end] |= right[:, : right_end - right_start]


def _pages(n_bytes: int, page_bytes: int) -> int:
    if n_bytes <= 0:
        return 0
    return (n_bytes + page_bytes - 1) // page_bytes
