"""Persistence, buffering, durability, and I/O accounting substrates."""

from repro.storage.buffer import PageCache
from repro.storage.durable import (
    durable_replace,
    durable_write_bytes,
    fsync_dir,
    fsync_file,
)
from repro.storage.metrics import (
    DEFAULT_IO_LATENCY_S,
    DEFAULT_PAGE_BYTES,
    CostModel,
    IOStats,
)

__all__ = [
    "PageCache",
    "DiskBBS",
    "CostModel",
    "IOStats",
    "RecoveryReport",
    "inspect_index",
    "salvage_index",
    "durable_replace",
    "durable_write_bytes",
    "fsync_dir",
    "fsync_file",
    "DEFAULT_IO_LATENCY_S",
    "DEFAULT_PAGE_BYTES",
]

_LAZY = {
    # DiskBBS (and the recovery layer on top of it) depends on
    # repro.core.bbs, which itself imports repro.storage.metrics; lazy
    # exports break the import cycle.
    "DiskBBS": ("repro.storage.diskbbs", "DiskBBS"),
    "RecoveryReport": ("repro.storage.recovery", "RecoveryReport"),
    "inspect_index": ("repro.storage.recovery", "inspect_index"),
    "salvage_index": ("repro.storage.recovery", "salvage_index"),
}


def __getattr__(name):
    try:
        module_name, attr = _LAZY[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    import importlib

    return getattr(importlib.import_module(module_name), attr)
