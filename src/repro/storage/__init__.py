"""Persistence, buffering, and I/O accounting substrates."""

from repro.storage.buffer import PageCache
from repro.storage.metrics import (
    DEFAULT_IO_LATENCY_S,
    DEFAULT_PAGE_BYTES,
    CostModel,
    IOStats,
)

__all__ = [
    "PageCache",
    "DiskBBS",
    "CostModel",
    "IOStats",
    "DEFAULT_IO_LATENCY_S",
    "DEFAULT_PAGE_BYTES",
]


def __getattr__(name):
    # DiskBBS depends on repro.core.bbs, which itself imports
    # repro.storage.metrics; a lazy export breaks the import cycle.
    if name == "DiskBBS":
        from repro.storage.diskbbs import DiskBBS

        return DiskBBS
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
