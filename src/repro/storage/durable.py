"""Durability primitives: fsync barriers and crash-atomic file replacement.

``write(); flush()`` only hands bytes to the OS — after a power cut or
``kill -9`` the data may be partially on disk or not at all.  The
crash-safety layer (see :mod:`repro.storage.diskbbs` and
:mod:`repro.storage.recovery`) builds on three primitives:

* :func:`fsync_file` — a write barrier on an open handle: everything
  written before the call is durable before anything written after it;
* :func:`durable_replace` — the full write-temp-then-rename ritual.
  ``os.replace`` alone is atomic against *observers* but not against
  crashes: the temp file's bytes and the directory entry both need
  their own fsync before the rename is durable;
* :func:`durable_write_bytes` — whole-file atomic publish built on the
  other two (used by the slice-file saver and the index rebuilder).

Directory fsync is not supported on some platforms (notably Windows);
:func:`fsync_dir` degrades to a no-op there rather than failing, which
matches the best guarantee the platform offers.

Every barrier is counted in an optional
:class:`~repro.storage.metrics.IOStats` (``stats.fsyncs``) so the cost
model and tests can observe exactly how many durability points a
protocol pays.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.errors import StorageError
from repro.storage.metrics import IOStats


def fsync_file(fh, stats: IOStats | None = None) -> None:
    """Flush ``fh``'s userspace buffer and fsync its file descriptor."""
    fh.flush()
    os.fsync(fh.fileno())
    if stats is not None:
        stats.fsyncs += 1


def fsync_path(path, stats: IOStats | None = None) -> None:
    """fsync a closed file by path (opens read-only just for the barrier)."""
    fd = os.open(os.fspath(path), os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
    if stats is not None:
        stats.fsyncs += 1


def fsync_dir(path, stats: IOStats | None = None) -> None:
    """fsync a directory so a rename/creat inside it is durable.

    Platforms that cannot open a directory for fsync (Windows) are
    silently skipped — there is no stronger primitive available there.
    """
    try:
        fd = os.open(os.fspath(path), os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
        if stats is not None:
            stats.fsyncs += 1
    except OSError:
        pass
    finally:
        os.close(fd)


def durable_replace(tmp_path, target_path, stats: IOStats | None = None) -> None:
    """Atomically and durably rename ``tmp_path`` over ``target_path``.

    The temp file's contents are fsynced first (so the rename can never
    expose a file whose bytes are still in flight), then the parent
    directory entry is fsynced after the rename.
    """
    tmp = Path(tmp_path)
    target = Path(target_path)
    try:
        fsync_path(tmp, stats)
        os.replace(tmp, target)
    except OSError as exc:
        raise StorageError(
            f"atomic replace of {target} failed: {exc}", path=target
        ) from exc
    fsync_dir(target.parent, stats)


def durable_write_bytes(path, blob: bytes, stats: IOStats | None = None) -> None:
    """Write ``blob`` to ``path`` crash-atomically.

    Either the old contents or the new contents survive a crash at any
    instant — never a mixture, never a torn file.  The temp sibling is
    cleaned up if the write itself fails (e.g. ``ENOSPC``).
    """
    target = Path(path)
    tmp = target.with_suffix(target.suffix + ".tmp")
    try:
        with open(tmp, "wb") as fh:
            fh.write(blob)
            fsync_file(fh, stats)
    except OSError as exc:
        try:
            tmp.unlink(missing_ok=True)
        except OSError:
            pass
        raise StorageError(
            f"cannot write {target}: {exc}", path=target
        ) from exc
    # The temp file is already synced; rename and seal the directory entry.
    try:
        os.replace(tmp, target)
    except OSError as exc:
        raise StorageError(
            f"atomic replace of {target} failed: {exc}", path=target
        ) from exc
    fsync_dir(target.parent, stats)
