"""A small page buffer with LRU eviction and I/O accounting.

Both the in-memory :class:`~repro.data.database.TransactionDatabase`
(which *simulates* paging so that I/O counts are meaningful) and the
disk-backed :class:`~repro.data.diskdb.DiskDatabase` route page accesses
through a :class:`PageCache`.  A hit costs nothing; a miss charges one
``page_read`` to the attached :class:`~repro.storage.metrics.IOStats`.

The cache is intentionally simple — an :class:`collections.OrderedDict`
LRU — because its purpose is faithful *accounting*, not throughput: the
paper's probe refinement wins precisely because repeated probes of hot
pages hit the buffer pool.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Hashable

from repro.errors import ConfigurationError
from repro.storage.metrics import IOStats


class PageCache:
    """LRU cache of page payloads keyed by an arbitrary hashable page id."""

    def __init__(self, capacity_pages: int, stats: IOStats | None = None):
        if capacity_pages < 1:
            raise ConfigurationError(
                f"page cache needs capacity >= 1 page, got {capacity_pages}"
            )
        self.capacity_pages = capacity_pages
        self.stats = stats if stats is not None else IOStats()
        self._pages: OrderedDict[Hashable, object] = OrderedDict()

    def __len__(self) -> int:
        return len(self._pages)

    def __contains__(self, page_id: Hashable) -> bool:
        return page_id in self._pages

    def get(self, page_id: Hashable, loader: Callable[[], object] = lambda: None):
        """Fetch a page, loading (and charging one read) on a miss.

        ``loader`` produces the page payload on a miss; accounting-only
        callers can rely on the default no-op loader.
        """
        if page_id in self._pages:
            self._pages.move_to_end(page_id)
            self.stats.cache_hits += 1
            return self._pages[page_id]
        self.stats.cache_misses += 1
        self.stats.page_reads += 1
        payload = loader()
        self._pages[page_id] = payload
        if len(self._pages) > self.capacity_pages:
            self._pages.popitem(last=False)
        return payload

    def invalidate(self, page_id: Hashable) -> None:
        """Drop one page (used when a page is rewritten)."""
        self._pages.pop(page_id, None)

    def clear(self) -> None:
        """Drop every cached page (counters are left untouched)."""
        self._pages.clear()

    def resize(self, capacity_pages: int) -> None:
        """Change capacity, evicting LRU pages if shrinking."""
        if capacity_pages < 1:
            raise ConfigurationError(
                f"page cache needs capacity >= 1 page, got {capacity_pages}"
            )
        self.capacity_pages = capacity_pages
        while len(self._pages) > capacity_pages:
            self._pages.popitem(last=False)
