"""I/O accounting and the simulated-response-time cost model.

The paper reports wall-clock response times on a 167 MHz SUN Ultra 1
with a 1997-era disk.  Re-running on modern hardware (with the whole
working set in the page cache) would flatten exactly the effects the
memory-size experiment (Figure 11) is about.  We therefore make the I/O
explicit: every database scan, index probe, and slice read increments
counters in an :class:`IOStats`, and a :class:`CostModel` converts
``(cpu_seconds, stats)`` into a simulated response time::

    simulated = cpu_seconds * cpu_scale + page_ios * io_latency

Benchmarks report both raw wall-clock and the simulated figure; the
figure-11 reproduction uses the simulated one (see DESIGN.md,
"Substitutions").
"""

from __future__ import annotations

from dataclasses import dataclass, field

DEFAULT_PAGE_BYTES = 4096
#: 1997-era disk: ~10 ms average access per page.
DEFAULT_IO_LATENCY_S = 0.010


@dataclass
class IOStats:
    """Mutable counter bundle threaded through databases and indexes."""

    page_reads: int = 0
    page_writes: int = 0
    tuples_read: int = 0
    db_scans: int = 0
    slice_reads: int = 0      # BBS slice rows pulled from storage
    probe_fetches: int = 0    # positional-index tuple fetches
    cache_hits: int = 0
    cache_misses: int = 0
    # Durability / recovery counters (crash-safety layer).
    fsyncs: int = 0              # fsync barriers issued by durable appends
    salvage_events: int = 0      # recovery passes that had to repair a file
    torn_bytes_truncated: int = 0  # uncommitted tail bytes dropped by salvage
    quarantined_segments: int = 0  # corrupt segments set aside by salvage
    rebuilt_transactions: int = 0  # transactions re-inserted from a companion db
    scrub_checks: int = 0          # incremental verification units completed
    scrub_findings: int = 0        # corruption findings raised by the scrubber

    def reset(self) -> None:
        """Zero every counter in place."""
        for name in self.__dataclass_fields__:
            setattr(self, name, 0)

    def as_dict(self) -> dict[str, int]:
        """Every counter as a plain ``{name: value}`` dict.

        The canonical export format: the service ``metrics`` endpoint
        ships these dicts over the wire, and the CLI ``check`` command
        prints the durability subset from one.  Field order follows the
        dataclass declaration, so serialised output is stable.
        """
        return {
            name: getattr(self, name) for name in self.__dataclass_fields__
        }

    #: Counters that describe durability and recovery work rather than
    #: query I/O; surfaced separately by CLI ``check`` and ``repair``.
    DURABILITY_FIELDS = (
        "fsyncs",
        "salvage_events",
        "torn_bytes_truncated",
        "quarantined_segments",
        "rebuilt_transactions",
    )

    def durability_dict(self) -> dict[str, int]:
        """The durability/recovery counters only (a sub-view of as_dict)."""
        return {name: getattr(self, name) for name in self.DURABILITY_FIELDS}

    def snapshot(self) -> "IOStats":
        """An independent copy of the current counter values."""
        return IOStats(**{
            name: getattr(self, name) for name in self.__dataclass_fields__
        })

    def merged(self, other: "IOStats") -> "IOStats":
        """A new :class:`IOStats` with counters summed pairwise."""
        return IOStats(**{
            name: getattr(self, name) + getattr(other, name)
            for name in self.__dataclass_fields__
        })

    def __sub__(self, other: "IOStats") -> "IOStats":
        return IOStats(**{
            name: getattr(self, name) - getattr(other, name)
            for name in self.__dataclass_fields__
        })

    @property
    def total_page_ios(self) -> int:
        """Reads plus writes — the quantity the cost model charges."""
        return self.page_reads + self.page_writes


@dataclass(frozen=True)
class CostModel:
    """Convert measured CPU time plus counted I/O into a response time.

    ``cpu_scale`` rescales Python CPU time toward the paper's compiled
    C++ (default 1.0: report Python time as-is, since only *relative*
    times matter for the reproduction).  ``io_latency_s`` is the charge
    per page I/O.
    """

    io_latency_s: float = DEFAULT_IO_LATENCY_S
    cpu_scale: float = 1.0
    page_bytes: int = DEFAULT_PAGE_BYTES

    def pages_for_bytes(self, n_bytes: int) -> int:
        """Number of pages spanned by ``n_bytes`` of sequential data."""
        if n_bytes <= 0:
            return 0
        return (n_bytes + self.page_bytes - 1) // self.page_bytes

    def response_time(self, cpu_seconds: float, stats: IOStats) -> float:
        """Simulated response time in seconds."""
        return cpu_seconds * self.cpu_scale + stats.total_page_ios * self.io_latency_s
