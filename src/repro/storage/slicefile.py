"""Binary persistence for the BBS index — the "persistent" in BBS.

The paper's index is explicitly *"a dynamic and persistent data
structure"*: it lives on disk between mining runs and absorbs inserts
without a rebuild.  This module defines the on-disk format:

====================  ==========================================
offset 0              magic ``b"BBSF"``
4                     format version (uint32 LE)
8                     header length ``H`` (uint32 LE)
12 .. 12+H            JSON header (hash family, m, k, n_tx,
                      signature-bit total, item counts)
12+H ..               slice matrix: ``m * n_words`` uint64 LE,
                      row-major (slice 0 first)
last 4 bytes          CRC32 of everything before it (uint32 LE)
====================  ==========================================

Items in the count table may be ``int`` or ``str``; they are stored
type-tagged so a reload round-trips exactly.  The trailing CRC turns
torn writes and bit rot into :class:`~repro.errors.CorruptFileError`
instead of silent wrong answers.
"""

from __future__ import annotations

import json
import struct
import zlib
from pathlib import Path

import numpy as np

from repro.core.hashing import family_from_description
from repro.errors import CorruptFileError, StorageError
from repro.storage.durable import durable_write_bytes
from repro.storage.metrics import IOStats

MAGIC = b"BBSF"
FORMAT_VERSION = 1
_HEAD = struct.Struct("<4sII")
_CRC = struct.Struct("<I")


def _encode_item(item, path: Path) -> list:
    if isinstance(item, bool) or not isinstance(item, (int, str)):
        raise StorageError(
            f"only int and str items can be persisted, "
            f"got {type(item).__name__}", path=path,
        )
    return ["i", item] if isinstance(item, int) else ["s", item]


def _decode_item(tagged: list, path: Path):
    tag, value = tagged
    if tag == "i":
        return int(value)
    if tag == "s":
        return str(value)
    raise CorruptFileError(
        f"unknown item tag {tag!r} in slice file", path=path
    )


def save_bbs(bbs, path) -> None:
    """Write ``bbs`` to ``path`` crash-atomically.

    The payload goes to a temp sibling which is fsynced, renamed over
    the target, and sealed with a directory fsync — so a crash at any
    byte leaves either the complete old file or the complete new one
    (write-temp-then-rename alone is atomic only against concurrent
    readers, not against power loss).
    """
    target = Path(path)
    slices, n_tx, counts, sig_bits = bbs._raw_state()
    header = {
        "hash_family": bbs.hash_family.describe(),
        "m": bbs.m,
        "k": bbs.k,
        "n_transactions": n_tx,
        "n_words": int(slices.shape[1]),
        "signature_bits_total": sig_bits,
        "item_counts": [
            [_encode_item(item, target), count] for item, count in sorted(
                counts.items(), key=lambda pair: repr(pair[0])
            )
        ],
    }
    header_bytes = json.dumps(header, separators=(",", ":")).encode("utf-8")
    payload = bytearray()
    payload += _HEAD.pack(MAGIC, FORMAT_VERSION, len(header_bytes))
    payload += header_bytes
    payload += np.ascontiguousarray(slices, dtype="<u8").tobytes()
    payload += _CRC.pack(zlib.crc32(payload) & 0xFFFFFFFF)

    durable_write_bytes(target, bytes(payload), bbs.stats)
    bbs.stats.page_writes += _pages(len(payload))


def load_bbs(path, *, stats: IOStats | None = None):
    """Reload a BBS written by :func:`save_bbs`.

    Raises :class:`CorruptFileError` on any structural damage and
    :class:`StorageError` when the file cannot be read at all.
    """
    from repro.core.bbs import BBS  # local import to avoid a cycle

    target = Path(path)
    try:
        blob = target.read_bytes()
    except OSError as exc:
        raise StorageError(
            f"cannot read slice file {target}: {exc}", path=target
        ) from exc
    if len(blob) < _HEAD.size + _CRC.size:
        raise CorruptFileError(
            f"slice file {target} is truncated at byte {len(blob)} "
            f"(needs at least {_HEAD.size + _CRC.size})",
            path=target, offset=len(blob),
        )
    stored_crc, = _CRC.unpack_from(blob, len(blob) - _CRC.size)
    if zlib.crc32(blob[: -_CRC.size]) & 0xFFFFFFFF != stored_crc:
        raise CorruptFileError(
            f"slice file {target} failed its checksum over "
            f"{len(blob) - _CRC.size} bytes", path=target, offset=0,
        )
    magic, version, header_len = _HEAD.unpack_from(blob, 0)
    if magic != MAGIC:
        raise CorruptFileError(
            f"{target} is not a BBS slice file (magic {magic!r} at "
            f"offset 0)", path=target, offset=0,
        )
    if version != FORMAT_VERSION:
        raise CorruptFileError(
            f"slice file {target} has version {version}, "
            f"this library reads version {FORMAT_VERSION}",
            path=target, offset=4,
        )
    header_start = _HEAD.size
    header_end = header_start + header_len
    if header_end > len(blob) - _CRC.size:
        raise CorruptFileError(
            f"slice file {target} header overruns the file "
            f"(claims {header_len} bytes at offset {header_start})",
            path=target, offset=header_start,
        )
    try:
        header = json.loads(blob[header_start:header_end])
    except json.JSONDecodeError as exc:
        raise CorruptFileError(
            f"slice file {target} header at offset {header_start} is not "
            f"JSON: {exc}", path=target, offset=header_start,
        ) from exc

    try:
        m = int(header["m"])
        n_words = int(header["n_words"])
        n_tx = int(header["n_transactions"])
        sig_bits = int(header.get("signature_bits_total", 0))
        family = family_from_description(header["hash_family"])
        counts = {
            _decode_item(tagged, target): int(count)
            for tagged, count in header["item_counts"]
        }
    except (KeyError, TypeError, ValueError, CorruptFileError) as exc:
        raise CorruptFileError(
            f"slice file {target} header is malformed: {exc}",
            path=target, offset=header_start,
        ) from exc

    body = blob[header_end: -_CRC.size]
    expected = m * n_words * 8
    if len(body) != expected:
        raise CorruptFileError(
            f"slice file {target} body at offset {header_end} is "
            f"{len(body)} bytes, expected {expected}",
            path=target, offset=header_end,
        )
    matrix = np.frombuffer(body, dtype="<u8").astype(np.uint64).reshape(m, n_words)
    bbs = BBS._from_raw_state(family, matrix, n_tx, counts, sig_bits, stats=stats)
    bbs.stats.page_reads += _pages(len(blob))
    return bbs


def _pages(n_bytes: int, page_bytes: int = 4096) -> int:
    return (n_bytes + page_bytes - 1) // page_bytes
