"""Salvage and recovery for the segmented DiskBBS log.

:meth:`~repro.storage.diskbbs.DiskBBS.open` is deliberately strict: any
structural damage refuses the open.  This module is the other half of
the crash-safety story — it classifies damage and repairs what can be
repaired.  The recovery state machine over a scanned log:

1. **clean** — every segment parses, passes its CRC, and is sealed by a
   matching commit record: nothing to do.
2. **torn** — the valid committed prefix is followed by an *uncommitted*
   tail: an append that never reached its second fsync barrier (a crash
   or kill mid-:meth:`flush`).  Salvage truncates the tail; no committed
   data is touched.  This is the expected post-crash state.
3. **corrupt** — a *committed* segment fails its CRC or a commit record
   contradicts its segment (bit rot, overwrite).  Salvage keeps the
   longest valid prefix, quarantines the damaged suffix to a
   ``.quarantine`` sibling for forensics, and truncates.  Transactions
   covered by the damaged suffix are lost *unless* a companion
   transaction source is supplied, in which case the suffix is rebuilt
   by re-inserting the missing transactions.

Only the base header is unsalvageable: it holds the hash-family
parameters without which the slice matrix is meaningless, so damage
there raises :class:`~repro.errors.RecoveryError` (rebuild the index
from its database with ``repro-mine index`` instead).

Everything here works on the file, not on an open store; use
:meth:`DiskBBS.recover` for salvage-then-open in one step, or
``repro-mine check`` / ``repro-mine repair`` from the shell.
"""

from __future__ import annotations

import json
import zlib
from dataclasses import dataclass, field
from pathlib import Path

from repro.core.hashing import family_from_description
from repro.errors import (
    CorruptFileError,
    DatabaseMismatchError,
    RecoveryError,
    StorageError,
)
from repro.storage.diskbbs import (
    _BASE_HEAD,
    _COMMIT,
    _CRC,
    _SEG_HEAD,
    BASE_MAGIC,
    COMMIT_MAGIC,
    READABLE_VERSIONS,
    SEGMENT_MAGIC,
)
from repro.storage.durable import (
    durable_write_bytes,
    fsync_dir,
    fsync_file,
)
from repro.storage.metrics import DEFAULT_PAGE_BYTES, IOStats

#: Status labels (also the vocabulary of ``repro-mine check``).
CLEAN = "clean"
TORN = "torn"
CORRUPT = "corrupt"

#: Scripting-friendly exit codes for ``repro-mine check``.
EXIT_CLEAN = 0
EXIT_TORN = 3
EXIT_CORRUPT = 4


@dataclass
class RecoveryReport:
    """What a deep scan found, and (after salvage) what was done about it."""

    path: str
    status: str                        # CLEAN | TORN | CORRUPT
    format_version: int = 0
    segments_ok: int = 0               # fully valid committed segments
    committed_transactions: int = 0    # transactions those segments cover
    good_end: int = 0                  # byte length of the valid prefix
    damage_offset: int | None = None   # where the first bad entry starts
    suspect_bytes: int = 0             # bytes past the valid prefix
    detail: str | None = None          # human-readable cause of the damage
    repaired: bool = False
    truncated_bytes: int = 0
    quarantined_to: str | None = None
    rebuilt_transactions: int = 0
    actions: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """Whether the file needed (or needs) no repair."""
        return self.status == CLEAN

    def __str__(self) -> str:
        head = (
            f"{self.path}: {self.status} — {self.segments_ok} committed "
            f"segment(s), {self.committed_transactions} transaction(s)"
        )
        lines = [head]
        if self.detail:
            lines.append(f"  cause: {self.detail}")
        if self.suspect_bytes and not self.repaired:
            lines.append(
                f"  {self.suspect_bytes} suspect byte(s) past offset "
                f"{self.good_end}"
            )
        lines.extend(f"  {action}" for action in self.actions)
        return "\n".join(lines)


def inspect_index(path, *, stats: IOStats | None = None) -> RecoveryReport:
    """Deep, read-only scan of a DiskBBS file; classifies but never raises
    for torn/corrupt logs.

    Unlike open-time scanning this verifies every segment CRC and every
    commit seal (it reads the whole file once).  Raises
    :class:`~repro.errors.CorruptFileError` only when the file is not a
    readable DiskBBS log at all (missing/foreign/future base header).
    """
    target = Path(path)
    try:
        blob = target.read_bytes()
    except OSError as exc:
        raise StorageError(
            f"cannot read index {target}: {exc}", path=target
        ) from exc
    if stats is not None:
        stats.page_reads += (
            len(blob) + DEFAULT_PAGE_BYTES - 1
        ) // DEFAULT_PAGE_BYTES

    if len(blob) < _BASE_HEAD.size:
        raise CorruptFileError(
            f"{target} is {len(blob)} bytes, too short for a DiskBBS "
            f"base header", path=target, offset=0,
        )
    magic, version, header_len = _BASE_HEAD.unpack_from(blob, 0)
    if magic != BASE_MAGIC:
        raise CorruptFileError(
            f"{target} is not a DiskBBS index (magic {magic!r})",
            path=target, offset=0,
        )
    if version not in READABLE_VERSIONS:
        raise CorruptFileError(
            f"{target} is format version {version}, this library reads "
            f"versions {READABLE_VERSIONS}", path=target, offset=4,
        )
    header_end = _BASE_HEAD.size + header_len
    data_start = header_end + (_CRC.size if version >= 2 else 0)
    if data_start > len(blob):
        raise CorruptFileError(
            f"{target}: base header overruns the file "
            f"(claims {header_len} bytes of JSON)",
            path=target, offset=_BASE_HEAD.size,
        )
    if version >= 2:
        stored_seal, = _CRC.unpack_from(blob, header_end)
        actual_seal = zlib.crc32(blob[:header_end]) & 0xFFFFFFFF
        if stored_seal != actual_seal:
            raise CorruptFileError(
                f"{target}: base header failed its CRC seal at offset "
                f"{header_end}", path=target, offset=header_end,
            )
    try:
        header = json.loads(blob[_BASE_HEAD.size:header_end])
        family = family_from_description(header["hash_family"])
    except (json.JSONDecodeError, KeyError, TypeError, ValueError) as exc:
        raise CorruptFileError(
            f"{target}: base header JSON is malformed: {exc}",
            path=target, offset=_BASE_HEAD.size,
        ) from exc

    report = RecoveryReport(
        path=str(target), status=CLEAN, format_version=version,
        good_end=data_start,
    )
    m = family.m
    pos = data_start
    while pos < len(blob):
        end, n_tx, problem = _check_entry(blob, pos, m, version)
        if problem is not None:
            report.status, report.detail = problem
            report.damage_offset = pos
            break
        report.segments_ok += 1
        report.committed_transactions += n_tx
        report.good_end = end
        pos = end
    report.suspect_bytes = len(blob) - report.good_end
    return report


def _check_entry(blob: bytes, pos: int, m: int, version: int):
    """Validate one segment(+commit) entry starting at ``pos``.

    Returns ``(entry_end, n_tx, problem)`` where ``problem`` is ``None``
    for a fully valid committed entry, else ``(status, detail)``.
    Damage that runs off the end of the file is a torn append; damage
    with all its bytes present is corruption.
    """
    size = len(blob)
    if size - pos < _SEG_HEAD.size:
        return pos, 0, (TORN, f"torn segment header at offset {pos}")
    magic, n_tx, n_words, counts_len = _SEG_HEAD.unpack_from(blob, pos)
    if magic != SEGMENT_MAGIC:
        return pos, 0, (CORRUPT, f"bad segment magic at offset {pos}")
    seg_len = _SEG_HEAD.size + counts_len + m * n_words * 8 + _CRC.size
    seg_end = pos + seg_len
    if seg_end > size:
        return pos, 0, (
            TORN, f"segment at offset {pos} runs past EOF "
                  f"(needs {seg_len} bytes, {size - pos} present)",
        )
    commit_end = seg_end + (_COMMIT.size if version >= 2 else 0)
    if commit_end > size:
        return pos, 0, (
            TORN, f"segment at offset {pos} has a torn commit record",
        )
    if version >= 2:
        commit = blob[seg_end:commit_end]
        cmagic, coffset, clen, ccrc = _COMMIT.unpack(commit)
        sealed = zlib.crc32(commit[: -_CRC.size]) & 0xFFFFFFFF
        if cmagic != COMMIT_MAGIC or sealed != ccrc:
            # At the tail this is an interrupted append; mid-file it can
            # only be damage to already-committed state.
            status = TORN if commit_end >= size else CORRUPT
            return pos, 0, (
                status, f"invalid commit record at offset {seg_end}",
            )
        if coffset != pos or clen != seg_len:
            return pos, 0, (
                CORRUPT,
                f"commit record at offset {seg_end} seals offset "
                f"{coffset} (+{clen}), segment spans {pos} (+{seg_len})",
            )
    stored_crc, = _CRC.unpack_from(blob, seg_end - _CRC.size)
    actual = zlib.crc32(blob[pos: seg_end - _CRC.size]) & 0xFFFFFFFF
    if actual != stored_crc:
        return pos, 0, (
            CORRUPT, f"segment at offset {pos} failed its CRC "
                     f"(stored {stored_crc:#010x}, actual {actual:#010x})",
        )
    return commit_end, int(n_tx), None


def salvage_index(
    path,
    db=None,
    *,
    quarantine: bool = True,
    stats: IOStats | None = None,
) -> RecoveryReport:
    """Repair a damaged DiskBBS file in place; returns what was done.

    Torn tails are truncated to the last commit point.  Corrupt
    committed segments (and everything after them, which the log can no
    longer address) are quarantined to a ``.quarantine`` sibling and
    truncated away.  When ``db`` is given — a transaction-file path, a
    :class:`~repro.data.diskdb.DiskDatabase`, or any iterable of
    transactions — the transactions lost with the damaged suffix are
    re-inserted from it, restoring the index to full coverage.

    A clean file is returned untouched.  Damage to the base header
    raises :class:`~repro.errors.RecoveryError`: the hash-family
    parameters live there and cannot be reconstructed.
    """
    target = Path(path)
    try:
        report = inspect_index(target, stats=stats)
    except CorruptFileError as exc:
        raise RecoveryError(
            f"cannot salvage {target}: {exc} (rebuild the index from its "
            f"database with `repro-mine index`)", path=target,
        ) from exc

    if not report.clean:
        if stats is not None:
            stats.salvage_events += 1
        blob = target.read_bytes()
        suspect = blob[report.good_end:]
        if quarantine and suspect:
            qpath = target.with_suffix(target.suffix + ".quarantine")
            durable_write_bytes(qpath, suspect, stats)
            report.quarantined_to = str(qpath)
            report.actions.append(
                f"quarantined {len(suspect)} byte(s) to {qpath}"
            )
            if stats is not None:
                stats.quarantined_segments += 1
        try:
            with open(target, "r+b") as fh:
                fh.truncate(report.good_end)
                fsync_file(fh, stats)
        except OSError as exc:
            raise RecoveryError(
                f"cannot truncate {target} to its valid prefix: {exc}",
                path=target, offset=report.good_end,
            ) from exc
        fsync_dir(target.parent, stats)
        report.truncated_bytes = len(suspect)
        report.repaired = True
        report.actions.append(
            f"truncated {len(suspect)} byte(s); index restored to "
            f"{report.segments_ok} segment(s) / "
            f"{report.committed_transactions} transaction(s)"
        )
        if stats is not None:
            stats.torn_bytes_truncated += len(suspect)

    if db is not None:
        _rebuild_missing(target, db, report, stats)
    return report


def _rebuild_missing(
    target: Path, db, report: RecoveryReport, stats: IOStats | None
) -> None:
    """Re-insert the transactions the salvaged index no longer covers."""
    from repro.storage.diskbbs import DiskBBS

    kwargs = {} if stats is None else {"stats": stats}
    store = DiskBBS.open(target, **kwargs)
    try:
        committed = store.n_transactions
        seen = 0
        inserted = 0
        for transaction in _iter_transactions(db):
            if seen >= committed:
                store.insert(transaction)
                inserted += 1
            seen += 1
        if seen < committed:
            raise DatabaseMismatchError(
                f"transaction source holds {seen} transaction(s) but "
                f"{target} already covers {committed}; refusing to "
                f"rebuild from a source that cannot be its companion"
            )
    finally:
        store.close()
    report.rebuilt_transactions = inserted
    if inserted:
        report.repaired = True
        report.actions.append(
            f"re-inserted {inserted} transaction(s) from the companion "
            f"database"
        )
        if stats is not None:
            stats.rebuilt_transactions += inserted


def _iter_transactions(db):
    """Normalise the rebuild source to an iterable of item collections."""
    if isinstance(db, (str, Path)):
        from repro.data.diskdb import DiskDatabase

        with DiskDatabase(db) as source:
            yield from source
        return
    yield from db
