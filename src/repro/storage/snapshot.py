"""Snapshot manifests: shipping sealed DiskBBS segments to a follower.

A :class:`~repro.storage.diskbbs.DiskBBS` file is a base-header
prologue followed by a log of immutable, CRC-sealed segments — exactly
the shape a replica can bootstrap from without replaying the whole
journal.  This module describes such a file as a **manifest**: the base
prologue's length and CRC, one entry per committed segment (byte span,
transaction count, CRC), the total item count, and the primary's
**high-water tid** (the journal tid of the last record covered), so a
follower knows precisely where journal tailing must take over.

The manifest is pure data (JSON-safe dicts) — the wire layer ships it
inside an ordinary protocol frame, and the raw bytes of each span
travel separately via chunked ``snapshot_fetch`` requests.  Assembly on
the follower side (:func:`assemble_index`) is crash-atomic: the file is
built in a sibling temp file, every span is CRC-verified against its
manifest entry before it is accepted, and the result is durably
renamed into place.
"""

from __future__ import annotations

import zlib
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.errors import CorruptFileError, StorageError
from repro.storage.durable import durable_replace, fsync_file
from repro.storage.metrics import IOStats

#: Manifest format identifier; bump on incompatible layout changes.
MANIFEST_FORMAT = "repro-snapshot-v1"


def _crc(blob: bytes) -> int:
    return zlib.crc32(blob) & 0xFFFFFFFF


@dataclass(frozen=True)
class SegmentEntry:
    """One committed segment's identity inside a manifest."""

    index: int
    offset: int
    length: int
    n_tx: int
    crc32: int


@dataclass
class SnapshotManifest:
    """Everything a follower needs to rebuild a sealed DiskBBS file."""

    m: int
    k: int
    base_length: int
    base_crc32: int
    covered_transactions: int
    high_water_tid: int | None
    total_item_count: int
    segments: list[SegmentEntry] = field(default_factory=list)
    format: str = MANIFEST_FORMAT

    @property
    def total_bytes(self) -> int:
        """Total on-disk byte length the manifest describes."""
        return self.base_length + sum(entry.length for entry in self.segments)

    def as_dict(self) -> dict:
        """JSON-safe representation (the wire form)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload) -> "SnapshotManifest":
        """Parse a wire-form manifest, validating shape and format."""
        try:
            if payload["format"] != MANIFEST_FORMAT:
                raise ValueError(
                    f"unknown snapshot format {payload['format']!r}"
                )
            segments = [
                SegmentEntry(
                    index=int(entry["index"]),
                    offset=int(entry["offset"]),
                    length=int(entry["length"]),
                    n_tx=int(entry["n_tx"]),
                    crc32=int(entry["crc32"]),
                )
                for entry in payload["segments"]
            ]
            high_water = payload["high_water_tid"]
            return cls(
                m=int(payload["m"]),
                k=int(payload["k"]),
                base_length=int(payload["base_length"]),
                base_crc32=int(payload["base_crc32"]),
                covered_transactions=int(payload["covered_transactions"]),
                high_water_tid=None if high_water is None else int(high_water),
                total_item_count=int(payload["total_item_count"]),
                segments=segments,
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CorruptFileError(
                f"malformed snapshot manifest: {exc}", path="<manifest>"
            ) from exc


def build_manifest(index, *, high_water_tid: int | None) -> SnapshotManifest:
    """Describe an open DiskBBS's committed state as a manifest.

    Only sealed segments participate — the in-memory tail is *not*
    shippable (it has no bytes on disk yet); the follower recovers any
    tail transactions by journal tailing from ``covered_transactions``.
    ``high_water_tid`` is the journal tid of the last sealed record (or
    ``None`` for an empty index) and is recorded verbatim.
    """
    base = index.read_span(0, index.base_length)
    segments = []
    for position in range(index.n_segments):
        info = index.segment_info(position)
        blob = index.read_span(info["offset"], info["length"])
        segments.append(
            SegmentEntry(
                index=position,
                offset=info["offset"],
                length=info["length"],
                n_tx=info["n_tx"],
                crc32=_crc(blob),
            )
        )
    counts = index.sealed_item_counts
    return SnapshotManifest(
        m=index.m,
        k=index.k,
        base_length=index.base_length,
        base_crc32=_crc(base),
        covered_transactions=index.sealed_transactions,
        high_water_tid=high_water_tid,
        total_item_count=sum(
            counts.count(item) for item in counts.items()
        ),
        segments=segments,
    )


def verify_span(entry: SegmentEntry, blob: bytes, path) -> None:
    """Check a received segment span against its manifest entry."""
    if len(blob) != entry.length:
        raise CorruptFileError(
            f"segment {entry.index}: received {len(blob)} bytes, manifest "
            f"says {entry.length}", path=path, offset=entry.offset,
        )
    actual = _crc(blob)
    if actual != entry.crc32:
        raise CorruptFileError(
            f"segment {entry.index}: CRC mismatch (manifest "
            f"{entry.crc32:#010x}, received {actual:#010x})",
            path=path, offset=entry.offset,
        )


def assemble_index(
    manifest: SnapshotManifest,
    base_blob: bytes,
    segment_blobs,
    target_path,
    *,
    stats: IOStats | None = None,
) -> Path:
    """Rebuild a DiskBBS file from shipped spans, crash-atomically.

    ``segment_blobs`` is an iterable yielding one raw byte span per
    manifest segment, in order.  Every span (and the base prologue) is
    CRC-verified against the manifest before being written; the file is
    assembled in a sibling temp file and durably renamed over
    ``target_path``, so a crash mid-transfer never leaves a torn index.
    """
    target = Path(target_path)
    if len(base_blob) != manifest.base_length:
        raise CorruptFileError(
            f"snapshot base header is {len(base_blob)} bytes, manifest "
            f"says {manifest.base_length}", path=target, offset=0,
        )
    if _crc(base_blob) != manifest.base_crc32:
        raise CorruptFileError(
            f"snapshot base header failed its manifest CRC", path=target,
            offset=0,
        )
    tmp_path = target.with_suffix(target.suffix + ".snapshot")
    try:
        with open(tmp_path, "wb") as fh:
            fh.write(base_blob)
            expected = iter(manifest.segments)
            received = 0
            for blob in segment_blobs:
                try:
                    entry = next(expected)
                except StopIteration:
                    raise CorruptFileError(
                        f"received more segment spans than the manifest's "
                        f"{len(manifest.segments)}", path=target,
                    ) from None
                verify_span(entry, blob, target)
                if fh.tell() != entry.offset:
                    raise CorruptFileError(
                        f"segment {entry.index} expected at offset "
                        f"{entry.offset}, assembly is at {fh.tell()}",
                        path=target, offset=fh.tell(),
                    )
                fh.write(blob)
                received += 1
            if received != len(manifest.segments):
                raise CorruptFileError(
                    f"received {received} of {len(manifest.segments)} "
                    f"segment spans", path=target,
                )
            fsync_file(fh, stats)
    except OSError as exc:
        raise StorageError(
            f"cannot assemble snapshot at {tmp_path}: {exc}", path=tmp_path
        ) from exc
    durable_replace(tmp_path, target, stats)
    return target
