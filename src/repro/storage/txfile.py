"""The persistent transaction-file format and its positional index.

The Probe refinement needs exactly what the paper describes: *"an index
[whose] key is the relative position of the transaction from the
beginning of the file"*.  A transaction file is therefore two parts:

* ``<name>`` — the data file: a small header followed by fixed-layout
  records ``(tid: uint64, n_items: uint32, items: n * uint32)``;
* ``<name>.idx`` — the positional index: a header plus one uint64 byte
  offset per transaction, appended in lock-step with the data file.

Items are ``uint32`` integers (the synthetic workloads' native type);
string-item databases should stay in memory or map items through an
external dictionary.  Both files carry magics and the index stores the
record count, so mismatched or truncated pairs are detected on open.
"""

from __future__ import annotations

import struct
from pathlib import Path

import numpy as np

from repro.errors import CorruptFileError, StorageError

DATA_MAGIC = b"BBTX"
INDEX_MAGIC = b"BBIX"
FORMAT_VERSION = 1
_FILE_HEAD = struct.Struct("<4sI")
_RECORD_HEAD = struct.Struct("<QI")
_MAX_ITEM = 2**32 - 1


def index_path(data_path) -> Path:
    """The sidecar index path for a data file path."""
    data = Path(data_path)
    return data.with_suffix(data.suffix + ".idx")


class TransactionFileWriter:
    """Append-only writer keeping data and index in lock-step."""

    def __init__(self, path, *, truncate: bool = True):
        self.path = Path(path)
        self._index_path = index_path(path)
        mode = "wb" if truncate else "ab"
        fresh = truncate or not self.path.exists()
        self._data = open(self.path, mode)
        self._index = open(self._index_path, mode)
        if fresh:
            self._data.write(_FILE_HEAD.pack(DATA_MAGIC, FORMAT_VERSION))
            self._index.write(_FILE_HEAD.pack(INDEX_MAGIC, FORMAT_VERSION))
        self.n_written = 0

    def append(self, items, tid: int | None = None) -> int:
        """Write one transaction; returns its byte offset in the data file."""
        itemset = sorted(set(int(i) for i in items))
        if not itemset:
            raise StorageError("cannot write an empty transaction")
        if itemset[0] < 0 or itemset[-1] > _MAX_ITEM:
            raise StorageError(
                f"items must fit uint32, got range "
                f"[{itemset[0]}, {itemset[-1]}]"
            )
        offset = self._data.tell()
        record_tid = self.n_written if tid is None else int(tid)
        self._data.write(_RECORD_HEAD.pack(record_tid, len(itemset)))
        self._data.write(np.asarray(itemset, dtype="<u4").tobytes())
        self._index.write(struct.pack("<Q", offset))
        self.n_written += 1
        return offset

    def close(self) -> None:
        """Close both file handles."""
        self._data.close()
        self._index.close()

    def __enter__(self) -> "TransactionFileWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class TransactionFileReader:
    """Random and sequential access over a transaction file pair."""

    def __init__(self, path):
        self.path = Path(path)
        self._index_path = index_path(path)
        try:
            self._data = open(self.path, "rb")
            index_blob = self._index_path.read_bytes()
        except OSError as exc:
            raise StorageError(f"cannot open transaction file {path}: {exc}") from exc
        self._check_head(self._data.read(_FILE_HEAD.size), DATA_MAGIC, self.path)
        self._check_head(index_blob[: _FILE_HEAD.size], INDEX_MAGIC, self._index_path)
        payload = index_blob[_FILE_HEAD.size:]
        if len(payload) % 8:
            raise CorruptFileError(f"index {self._index_path} has a torn tail")
        self._offsets = np.frombuffer(payload, dtype="<u8")

    @staticmethod
    def _check_head(blob: bytes, magic: bytes, path) -> None:
        if len(blob) < _FILE_HEAD.size:
            raise CorruptFileError(f"{path} is truncated")
        got_magic, version = _FILE_HEAD.unpack_from(blob, 0)
        if got_magic != magic:
            raise CorruptFileError(f"{path} has the wrong magic")
        if version != FORMAT_VERSION:
            raise CorruptFileError(
                f"{path} is format version {version}, expected {FORMAT_VERSION}"
            )

    def __len__(self) -> int:
        return int(self._offsets.size)

    def read_at(self, position: int) -> tuple[int, tuple[int, ...]]:
        """``(tid, items)`` of the transaction at ``position``."""
        if not 0 <= position < len(self):
            raise StorageError(
                f"position {position} out of range [0, {len(self)})"
            )
        self._data.seek(int(self._offsets[position]))
        return self._read_record()

    def _read_record(self) -> tuple[int, tuple[int, ...]]:
        head = self._data.read(_RECORD_HEAD.size)
        if len(head) < _RECORD_HEAD.size:
            raise CorruptFileError(f"{self.path}: record header truncated")
        tid, n_items = _RECORD_HEAD.unpack(head)
        body = self._data.read(4 * n_items)
        if len(body) < 4 * n_items:
            raise CorruptFileError(f"{self.path}: record body truncated")
        items = tuple(int(i) for i in np.frombuffer(body, dtype="<u4"))
        return tid, items

    def scan(self):
        """Yield ``(position, tid, items)`` sequentially."""
        self._data.seek(_FILE_HEAD.size)
        for position in range(len(self)):
            yield (position, *self._read_record())

    def offset_of(self, position: int) -> int:
        """Byte offset of a record (page-accounting hook for DiskDatabase)."""
        return int(self._offsets[position])

    @property
    def data_bytes(self) -> int:
        """Size of the data file in bytes."""
        return self.path.stat().st_size

    def close(self) -> None:
        """Close the data file handle."""
        self._data.close()

    def __enter__(self) -> "TransactionFileReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
