"""The persistent transaction-file format and its positional index.

The Probe refinement needs exactly what the paper describes: *"an index
[whose] key is the relative position of the transaction from the
beginning of the file"*.  A transaction file is therefore two parts:

* ``<name>`` — the data file: a small header followed by fixed-layout
  records ``(tid: uint64, n_items: uint32, items: n * uint32)``;
* ``<name>.idx`` — the positional index: a header plus one uint64 byte
  offset per transaction, appended in lock-step with the data file.

Items are ``uint32`` integers (the synthetic workloads' native type);
string-item databases should stay in memory or map items through an
external dictionary.  Both files carry magics and the index stores the
record count, so mismatched or truncated pairs are detected on open.

**Crash safety.**  The index is *derived state*: every offset in it can
be recomputed by walking the data file.  :func:`salvage_txfile` exploits
this — after a crash it walks the data records, truncates any torn tail
record, and rewrites the index wholesale (crash-atomically), so the pair
is always recoverable up to the last complete record.  The writer runs
a cheap lock-step check when reopening for append and invokes the same
salvage when the pair is inconsistent, and fsyncs both files on close.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.errors import CorruptFileError, RecoveryError, StorageError
from repro.storage.durable import durable_write_bytes, fsync_file
from repro.storage.metrics import IOStats

DATA_MAGIC = b"BBTX"
INDEX_MAGIC = b"BBIX"
FORMAT_VERSION = 1
_FILE_HEAD = struct.Struct("<4sI")
_RECORD_HEAD = struct.Struct("<QI")
_MAX_ITEM = 2**32 - 1


def index_path(data_path) -> Path:
    """The sidecar index path for a data file path."""
    data = Path(data_path)
    return data.with_suffix(data.suffix + ".idx")


@dataclass
class TxSalvageReport:
    """What :func:`inspect_txfile` found / :func:`salvage_txfile` repaired."""

    path: str
    records_kept: int = 0
    data_bytes_truncated: int = 0
    index_rebuilt: bool = False
    repaired: bool = False
    actions: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """Whether the pair needed no repair."""
        return not self.actions

    def __str__(self) -> str:
        state = (
            "clean" if self.clean
            else "repaired" if self.repaired
            else "torn"
        )
        lines = [f"{self.path}: {state} — {self.records_kept} record(s)"]
        lines.extend(f"  {action}" for action in self.actions)
        return "\n".join(lines)


def _read_data_blob(data_path: Path) -> bytes:
    """Read a data file, insisting on a readable header."""
    try:
        blob = data_path.read_bytes()
    except OSError as exc:
        raise RecoveryError(
            f"cannot read transaction file {data_path}: {exc}",
            path=data_path,
        ) from exc
    if len(blob) < _FILE_HEAD.size:
        raise RecoveryError(
            f"{data_path} is {len(blob)} bytes, too short for a header",
            path=data_path, offset=0,
        )
    magic, version = _FILE_HEAD.unpack_from(blob, 0)
    if magic != DATA_MAGIC or version != FORMAT_VERSION:
        raise RecoveryError(
            f"{data_path} has no readable data header "
            f"(magic {magic!r}, version {version})",
            path=data_path, offset=0,
        )
    return blob


def _walk_records(blob: bytes) -> tuple[list[int], int]:
    """Offsets of every complete record, and where the walk stopped."""
    offsets = []
    pos = _FILE_HEAD.size
    while pos < len(blob):
        if len(blob) - pos < _RECORD_HEAD.size:
            break  # torn record header
        _, n_items = _RECORD_HEAD.unpack_from(blob, pos)
        end = pos + _RECORD_HEAD.size + 4 * n_items
        if end > len(blob):
            break  # torn record body
        offsets.append(pos)
        pos = end
    return offsets, pos


def _expected_index_bytes(offsets: list[int]) -> bytes:
    return _FILE_HEAD.pack(INDEX_MAGIC, FORMAT_VERSION) + np.asarray(
        offsets, dtype="<u8"
    ).tobytes()


def inspect_txfile(path, *, stats: IOStats | None = None) -> TxSalvageReport:
    """Read-only classification of a transaction-file pair.

    Reports exactly what :func:`salvage_txfile` would repair — a torn
    final record, a positional index that disagrees with the data — but
    writes nothing.  Raises :class:`~repro.errors.RecoveryError` when
    the data header itself is unreadable (unsalvageable).
    """
    data_path = Path(path)
    report = TxSalvageReport(path=str(data_path))
    blob = _read_data_blob(data_path)
    if stats is not None:
        stats.page_reads += 1
    offsets, pos = _walk_records(blob)
    report.records_kept = len(offsets)
    torn = len(blob) - pos
    if torn:
        report.data_bytes_truncated = torn
        report.actions.append(f"{torn} torn byte(s) at offset {pos}")
    try:
        current_index = index_path(path).read_bytes()
    except OSError:
        current_index = None
    if current_index != _expected_index_bytes(offsets):
        report.index_rebuilt = False
        report.actions.append(
            "positional index disagrees with the data file"
        )
    return report


def salvage_txfile(path, *, stats: IOStats | None = None) -> TxSalvageReport:
    """Restore a transaction-file pair to a consistent, readable state.

    Walks the data file record by record (the ground truth), truncates a
    torn final record, and rewrites the positional index from the walk
    when it disagrees with the data.  Raises
    :class:`~repro.errors.RecoveryError` if the data file's own header
    is unreadable — there is nothing to rebuild from then.
    """
    data_path = Path(path)
    idx_path = index_path(path)
    report = TxSalvageReport(path=str(data_path))
    blob = _read_data_blob(data_path)

    offsets, pos = _walk_records(blob)
    report.records_kept = len(offsets)

    torn = len(blob) - pos
    if torn:
        with open(data_path, "r+b") as fh:
            fh.truncate(pos)
            fsync_file(fh, stats)
        report.data_bytes_truncated = torn
        report.actions.append(
            f"truncated {torn} torn byte(s) at offset {pos}"
        )
        if stats is not None:
            stats.salvage_events += 1
            stats.torn_bytes_truncated += torn

    expected_index = _expected_index_bytes(offsets)
    try:
        current_index = idx_path.read_bytes()
    except OSError:
        current_index = None
    if current_index != expected_index:
        durable_write_bytes(idx_path, expected_index, stats)
        report.index_rebuilt = True
        report.actions.append(
            f"rebuilt positional index ({len(offsets)} offset(s))"
        )
        if stats is not None and not torn:
            stats.salvage_events += 1
    report.repaired = bool(report.actions)
    return report


def _read_record_at(fh, path) -> tuple[int, tuple[int, ...]]:
    """Read one ``(tid, items)`` record at the handle's current offset."""
    offset = fh.tell()
    head = fh.read(_RECORD_HEAD.size)
    if len(head) < _RECORD_HEAD.size:
        raise CorruptFileError(
            f"{path}: record header truncated at offset {offset} "
            f"({len(head)} of {_RECORD_HEAD.size} bytes)",
            path=path, offset=offset,
        )
    tid, n_items = _RECORD_HEAD.unpack(head)
    body = fh.read(4 * n_items)
    if len(body) < 4 * n_items:
        raise CorruptFileError(
            f"{path}: record body truncated at offset "
            f"{offset + _RECORD_HEAD.size} "
            f"({len(body)} of {4 * n_items} bytes)",
            path=path, offset=offset + _RECORD_HEAD.size,
        )
    items = tuple(int(i) for i in np.frombuffer(body, dtype="<u4"))
    return tid, items


class TransactionFileWriter:
    """Append-only writer keeping data and index in lock-step.

    Reopening for append (``truncate=False``) verifies the pair is in
    lock-step — the last indexed record must end exactly at the data
    file's EOF — and runs :func:`salvage_txfile` first when it is not,
    so appends never land after a torn tail.  ``close()`` fsyncs both
    files.
    """

    def __init__(
        self,
        path,
        *,
        truncate: bool = True,
        stats: IOStats | None = None,
    ):
        self.path = Path(path)
        self._index_path = index_path(path)
        self.stats = stats
        if not truncate and self.path.exists():
            self._ensure_consistent_tail()
        mode = "wb" if truncate else "ab"
        fresh = truncate or not self.path.exists()
        try:
            self._data = open(self.path, mode)
            self._index = open(self._index_path, mode)
        except OSError as exc:
            raise StorageError(
                f"cannot open transaction file {self.path} for writing: "
                f"{exc}", path=self.path,
            ) from exc
        if fresh:
            self._data.write(_FILE_HEAD.pack(DATA_MAGIC, FORMAT_VERSION))
            self._index.write(_FILE_HEAD.pack(INDEX_MAGIC, FORMAT_VERSION))
        self.n_written = 0

    def _ensure_consistent_tail(self) -> None:
        """Cheap lock-step check; full salvage only when it fails."""
        try:
            data_size = self.path.stat().st_size
            index_blob = self._index_path.read_bytes()
        except OSError:
            salvage_txfile(self.path, stats=self.stats)
            return
        payload = index_blob[_FILE_HEAD.size:]
        consistent = (
            data_size >= _FILE_HEAD.size
            and len(index_blob) >= _FILE_HEAD.size
            and index_blob[:4] == INDEX_MAGIC
            and len(payload) % 8 == 0
        )
        if consistent and payload:
            # The last indexed record must end exactly at the data EOF.
            last_offset = int(np.frombuffer(payload[-8:], dtype="<u8")[0])
            consistent = self._record_end(last_offset) == data_size
        elif consistent:
            consistent = data_size == _FILE_HEAD.size
        if not consistent:
            salvage_txfile(self.path, stats=self.stats)

    def _record_end(self, offset: int) -> int | None:
        """End offset of the record starting at ``offset``, or ``None``."""
        try:
            with open(self.path, "rb") as fh:
                fh.seek(offset)
                head = fh.read(_RECORD_HEAD.size)
        except OSError:
            return None
        if len(head) < _RECORD_HEAD.size:
            return None
        _, n_items = _RECORD_HEAD.unpack(head)
        return offset + _RECORD_HEAD.size + 4 * n_items

    def append(self, items, tid: int | None = None) -> int:
        """Write one transaction; returns its byte offset in the data file."""
        itemset = sorted(set(int(i) for i in items))
        if not itemset:
            raise StorageError(
                "cannot write an empty transaction", path=self.path
            )
        if itemset[0] < 0 or itemset[-1] > _MAX_ITEM:
            raise StorageError(
                f"items must fit uint32, got range "
                f"[{itemset[0]}, {itemset[-1]}]", path=self.path,
            )
        offset = self._data.tell()
        record_tid = self.n_written if tid is None else int(tid)
        self._data.write(_RECORD_HEAD.pack(record_tid, len(itemset)))
        self._data.write(np.asarray(itemset, dtype="<u4").tobytes())
        self._index.write(struct.pack("<Q", offset))
        self.n_written += 1
        return offset

    def sync(self) -> None:
        """Force both files durable (data first, then the derived index)."""
        fsync_file(self._data, self.stats)
        fsync_file(self._index, self.stats)

    def close(self) -> None:
        """Sync and close both file handles."""
        if not self._data.closed:
            try:
                self.sync()
            finally:
                self._data.close()
                self._index.close()

    def __enter__(self) -> "TransactionFileWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class TransactionFileReader:
    """Random and sequential access over a transaction file pair."""

    def __init__(self, path):
        self.path = Path(path)
        self._index_path = index_path(path)
        try:
            self._data = open(self.path, "rb")
            index_blob = self._index_path.read_bytes()
        except OSError as exc:
            raise StorageError(
                f"cannot open transaction file {path}: {exc}", path=path
            ) from exc
        self._check_head(self._data.read(_FILE_HEAD.size), DATA_MAGIC, self.path)
        self._check_head(index_blob[: _FILE_HEAD.size], INDEX_MAGIC, self._index_path)
        payload = index_blob[_FILE_HEAD.size:]
        if len(payload) % 8:
            raise CorruptFileError(
                f"index {self._index_path} has a torn tail "
                f"({len(payload)} payload bytes is not a multiple of 8; "
                f"run `repro-mine repair` to rebuild it)",
                path=self._index_path,
                offset=_FILE_HEAD.size + len(payload) - len(payload) % 8,
            )
        self._offsets = np.frombuffer(payload, dtype="<u8")
        data_size = self.path.stat().st_size
        if self._offsets.size and int(self._offsets[-1]) >= data_size:
            raise CorruptFileError(
                f"index {self._index_path} points at offset "
                f"{int(self._offsets[-1])} beyond the data file "
                f"({data_size} bytes; run `repro-mine repair`)",
                path=self._index_path, offset=int(self._offsets[-1]),
            )

    @staticmethod
    def _check_head(blob: bytes, magic: bytes, path) -> None:
        if len(blob) < _FILE_HEAD.size:
            raise CorruptFileError(
                f"{path} is truncated ({len(blob)} of {_FILE_HEAD.size} "
                f"header bytes)", path=path, offset=0,
            )
        got_magic, version = _FILE_HEAD.unpack_from(blob, 0)
        if got_magic != magic:
            raise CorruptFileError(
                f"{path} has the wrong magic ({got_magic!r} at offset 0)",
                path=path, offset=0,
            )
        if version != FORMAT_VERSION:
            raise CorruptFileError(
                f"{path} is format version {version}, expected "
                f"{FORMAT_VERSION}", path=path, offset=4,
            )

    def __len__(self) -> int:
        return int(self._offsets.size)

    def read_at(self, position: int) -> tuple[int, tuple[int, ...]]:
        """``(tid, items)`` of the transaction at ``position``."""
        if not 0 <= position < len(self):
            raise StorageError(
                f"position {position} out of range [0, {len(self)})",
                path=self.path,
            )
        self._data.seek(int(self._offsets[position]))
        return self._read_record()

    def _read_record(self) -> tuple[int, tuple[int, ...]]:
        return _read_record_at(self._data, self.path)

    def scan(self):
        """Yield ``(position, tid, items)`` sequentially."""
        self._data.seek(_FILE_HEAD.size)
        for position in range(len(self)):
            yield (position, *self._read_record())

    def offset_of(self, position: int) -> int:
        """Byte offset of a record (page-accounting hook for DiskDatabase)."""
        return int(self._offsets[position])

    @property
    def data_bytes(self) -> int:
        """Size of the data file in bytes."""
        return self.path.stat().st_size

    def close(self) -> None:
        """Close the data file handle."""
        self._data.close()

    def __enter__(self) -> "TransactionFileReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class TransactionTailReader:
    """Incremental reader over a *growing* transaction file pair.

    :class:`TransactionFileReader` snapshots the positional index at
    open time; replication instead needs to keep reading records that a
    live :class:`TransactionFileWriter` appends to the same pair.  This
    reader holds both files open and :meth:`refresh` picks up any newly
    *complete* index entries (a torn trailing offset — fewer than 8
    bytes — is left for the next refresh, so concurrent appends are
    never misread).  Only records whose offsets the index already
    carries are served: the writer appends data before index, so every
    indexed record is complete in the data file.
    """

    def __init__(self, path):
        self.path = Path(path)
        self._index_path = index_path(path)
        try:
            self._data = open(self.path, "rb")
            self._index = open(self._index_path, "rb")
        except OSError as exc:
            raise StorageError(
                f"cannot open transaction file {path} for tailing: {exc}",
                path=path,
            ) from exc
        TransactionFileReader._check_head(
            self._data.read(_FILE_HEAD.size), DATA_MAGIC, self.path
        )
        TransactionFileReader._check_head(
            self._index.read(_FILE_HEAD.size), INDEX_MAGIC, self._index_path
        )
        self._offsets: list[int] = []
        self.refresh()

    def __len__(self) -> int:
        """Records visible so far (as of the last :meth:`refresh`)."""
        return len(self._offsets)

    def refresh(self) -> int:
        """Pick up newly appended complete index entries; returns the count."""
        before = len(self._offsets)
        while True:
            mark = self._index.tell()
            blob = self._index.read(8)
            if len(blob) < 8:
                # Torn (in-flight) offset: rewind so the next refresh
                # re-reads it once the writer finishes the entry.
                self._index.seek(mark)
                break
            self._offsets.append(int(np.frombuffer(blob, dtype="<u8")[0]))
        return len(self._offsets) - before

    def read_from(
        self, position: int, limit: int
    ) -> list[tuple[int, int, tuple[int, ...]]]:
        """Up to ``limit`` records ``(position, tid, items)`` starting at
        ``position``, within what the last :meth:`refresh` exposed."""
        if position < 0:
            raise StorageError(
                f"position {position} out of range", path=self.path
            )
        out = []
        end = min(len(self._offsets), position + max(0, int(limit)))
        for pos in range(position, end):
            self._data.seek(self._offsets[pos])
            tid, items = _read_record_at(self._data, self.path)
            out.append((pos, tid, items))
        return out

    def close(self) -> None:
        """Close both file handles."""
        self._data.close()
        self._index.close()

    def __enter__(self) -> "TransactionTailReader":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
