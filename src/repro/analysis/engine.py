"""The AST lint engine: module context, rule pipeline, suppression.

One :class:`ModuleContext` is built per file — source, parsed tree,
parent links, enclosing-scope names, and ``# repro: noqa(...)``
suppressions — and every registered rule runs over that shared context,
so a whole-tree scan parses each file exactly once.

Rules are small classes (see :mod:`repro.analysis.rules`) with an ``id``
(``RPR001``...), a ``severity``, and a ``check(ctx)`` generator yielding
:class:`~repro.analysis.findings.Finding` records.  The engine applies
line-level suppression; repo-level accepted findings live in the
baseline (:mod:`repro.analysis.baseline`), which the CLI applies on top.

Suppression syntax, matched per reported line::

    time.sleep(0.1)  # repro: noqa(RPR002) -- justification
    anything()       # repro: noqa         -- suppresses every rule
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterable, Iterator

from repro.analysis.findings import Finding

_NOQA = re.compile(
    r"#\s*repro:\s*noqa(?:\(\s*(?P<rules>[A-Z0-9,\s]+?)\s*\))?"
)

#: Scope-owning nodes: their names build the dotted ``symbol`` of a finding.
_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


class Rule:
    """Base class for one lint rule.

    Subclasses set ``id``, ``name``, ``severity``, ``rationale`` and
    implement :meth:`check`; :meth:`applies_to` gates by path so a rule
    scoped to ``storage/`` never walks a ``core/`` module.
    """

    id: str = "RPR000"
    name: str = "unnamed"
    severity: str = "error"
    rationale: str = ""

    def applies_to(self, ctx: "ModuleContext") -> bool:
        return True

    def check(self, ctx: "ModuleContext") -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: "ModuleContext", node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.id,
            severity=self.severity,
            path=ctx.rel_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
            symbol=ctx.symbol_of(node),
        )


class ModuleContext:
    """Everything a rule needs about one parsed module."""

    def __init__(self, rel_path: str, source: str):
        self.rel_path = rel_path.replace("\\", "/")
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=rel_path)
        self._parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent
        self._noqa = self._parse_noqa()

    # -- relationships -------------------------------------------------------

    def parent(self, node: ast.AST) -> ast.AST | None:
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self._parents.get(node)
        while current is not None:
            yield current
            current = self._parents.get(current)

    def enclosing_function(
        self, node: ast.AST
    ) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor
        return None

    def in_async_function(self, node: ast.AST) -> bool:
        """Whether ``node`` runs on the event loop: its nearest enclosing
        function is ``async def`` (a nested sync ``def`` opts back out)."""
        return isinstance(self.enclosing_function(node), ast.AsyncFunctionDef)

    def enclosing_handler(self, node: ast.AST) -> ast.ExceptHandler | None:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, ast.ExceptHandler):
                return ancestor
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return None  # a nested def is a fresh raise context
        return None

    def symbol_of(self, node: ast.AST) -> str:
        parts = []
        if isinstance(node, _SCOPE_NODES):
            parts.append(node.name)
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, _SCOPE_NODES):
                parts.append(ancestor.name)
        return ".".join(reversed(parts))

    def functions(self) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node

    def body_nodes(
        self, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[ast.AST]:
        """Walk a function's own body, not descending into nested defs."""
        stack: list[ast.AST] = list(ast.iter_child_nodes(func))
        while stack:
            node = stack.pop()
            if isinstance(node, _SCOPE_NODES):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    # -- suppression ---------------------------------------------------------

    def _parse_noqa(self) -> dict[int, set[str] | None]:
        """``{lineno: {rule ids}}``; ``None`` means every rule."""
        table: dict[int, set[str] | None] = {}
        for lineno, line in enumerate(self.lines, start=1):
            match = _NOQA.search(line)
            if not match:
                continue
            rules = match.group("rules")
            if rules is None:
                table[lineno] = None
            else:
                table[lineno] = {
                    piece.strip() for piece in rules.split(",") if piece.strip()
                }
        return table

    def suppressed(self, finding: Finding) -> bool:
        rules = self._noqa.get(finding.line, ())
        return rules is None or finding.rule in rules


def dotted_name(expr: ast.AST) -> str:
    """``a.b.c`` for an attribute chain rooted at a Name; ``""`` otherwise.

    Chains rooted in calls or subscripts (``open(p).read``) resolve to
    the readable suffix prefixed with ``()`` so rules can still match on
    the tail without mistaking it for a module path.
    """
    parts: list[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    elif parts:
        parts.append("()")
    return ".".join(reversed(parts))


def call_name(call: ast.Call) -> str:
    """The last component of a call's function: ``fsync_file``, ``sleep``."""
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def analyze_source(
    source: str, rel_path: str, rules: Iterable[Rule]
) -> list[Finding]:
    """Run ``rules`` over one module's source; noqa already applied."""
    ctx = ModuleContext(rel_path, source)
    findings: list[Finding] = []
    for rule in rules:
        if not rule.applies_to(ctx):
            continue
        for finding in rule.check(ctx):
            if not ctx.suppressed(finding):
                findings.append(finding)
    return findings


def iter_python_files(paths: Iterable[str | Path], root: Path) -> Iterator[Path]:
    """Expand files/directories into a deterministic ``.py`` file list."""
    seen = set()
    for entry in paths:
        path = Path(entry)
        if not path.is_absolute():
            path = root / path
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            if "__pycache__" in candidate.parts:
                continue
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def analyze_paths(
    paths: Iterable[str | Path],
    rules: Iterable[Rule],
    *,
    root: str | Path | None = None,
) -> tuple[list[Finding], list[str]]:
    """Scan files and directories; returns ``(findings, skipped)``.

    ``skipped`` lists files that could not be read or parsed (reported,
    never silently dropped — an unparseable file would otherwise read
    as "clean").  Paths in findings are relative to ``root`` (default:
    the current directory) when possible.
    """
    root_path = Path(root) if root is not None else Path.cwd()
    rules = list(rules)
    findings: list[Finding] = []
    skipped: list[str] = []
    for path in iter_python_files(paths, root_path):
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            skipped.append(f"{path}: unreadable: {exc}")
            continue
        try:
            rel = path.resolve().relative_to(root_path.resolve()).as_posix()
        except ValueError:
            rel = path.as_posix()
        try:
            findings.extend(analyze_source(source, rel, rules))
        except SyntaxError as exc:
            skipped.append(f"{rel}: syntax error: {exc}")
    return sorted(findings, key=Finding.sort_key), skipped
