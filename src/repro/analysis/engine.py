"""The AST lint engine: module context, rule pipeline, suppression.

One :class:`ModuleContext` is built per file — source, parsed tree,
parent links, enclosing-scope names, and ``# repro: noqa(...)``
suppressions — and every registered rule runs over that shared context,
so a whole-tree scan parses each file exactly once.

Rules are small classes (see :mod:`repro.analysis.rules`) with an ``id``
(``RPR001``...), a ``severity``, and a ``check(ctx)`` generator yielding
:class:`~repro.analysis.findings.Finding` records.  The engine applies
line-level suppression; repo-level accepted findings live in the
baseline (:mod:`repro.analysis.baseline`), which the CLI applies on top.

Suppression syntax, matched per reported line::

    time.sleep(0.1)  # repro: noqa(RPR002) -- justification
    anything()       # repro: noqa         -- suppresses every rule

A noqa anywhere on a *multi-line logical statement* — a parenthesised
continuation, or the decorator/signature lines of a decorated ``def`` —
covers the whole statement, so the comment can live on whichever
physical line fits (a finding is always reported at the statement's
first line, which is not necessarily where the comment reads best).
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Iterator

from repro.analysis.findings import Finding

if TYPE_CHECKING:  # pragma: no cover - type-only import (lazy at runtime)
    from repro.analysis.flow.program import ProgramContext

_NOQA = re.compile(
    r"#\s*repro:\s*noqa(?:\(\s*(?P<rules>[A-Z0-9,\s]+?)\s*\))?"
)

#: Scope-owning nodes: their names build the dotted ``symbol`` of a finding.
_SCOPE_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


class Rule:
    """Base class for one lint rule.

    Subclasses set ``id``, ``name``, ``severity``, ``rationale`` and
    implement :meth:`check`; :meth:`applies_to` gates by path so a rule
    scoped to ``storage/`` never walks a ``core/`` module.
    """

    id: str = "RPR000"
    name: str = "unnamed"
    severity: str = "error"
    rationale: str = ""

    def applies_to(self, ctx: "ModuleContext") -> bool:
        return True

    def check(self, ctx: "ModuleContext") -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: "ModuleContext", node: ast.AST, message: str) -> Finding:
        return Finding(
            rule=self.id,
            severity=self.severity,
            path=ctx.rel_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0) + 1,
            message=message,
            symbol=ctx.symbol_of(node),
        )


class FlowRule(Rule):
    """A rule that needs the whole-scan flow view (CFGs, call graph).

    Flow rules implement :meth:`check_flow` instead of :meth:`check`;
    the engine builds one :class:`~repro.analysis.flow.program.ProgramContext`
    per scan and hands it to every flow rule alongside each module, so
    interprocedural facts (the call graph, transitive summaries) are
    computed once.  ``check`` still works — it wraps the module in a
    single-module program — so fixture tests drive flow rules through
    :func:`analyze_source` exactly like syntactic ones.
    """

    def check(self, ctx: "ModuleContext") -> Iterator[Finding]:
        from repro.analysis.flow.program import ProgramContext

        yield from self.check_flow(ProgramContext([ctx]), ctx)

    def check_flow(
        self, program: "ProgramContext", ctx: "ModuleContext"
    ) -> Iterator[Finding]:
        raise NotImplementedError


class ModuleContext:
    """Everything a rule needs about one parsed module."""

    def __init__(self, rel_path: str, source: str) -> None:
        self.rel_path = rel_path.replace("\\", "/")
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source, filename=rel_path)
        self._parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent
        self._noqa = self._parse_noqa()

    # -- relationships -------------------------------------------------------

    def parent(self, node: ast.AST) -> ast.AST | None:
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self._parents.get(node)
        while current is not None:
            yield current
            current = self._parents.get(current)

    def enclosing_function(
        self, node: ast.AST
    ) -> ast.FunctionDef | ast.AsyncFunctionDef | None:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return ancestor
        return None

    def in_async_function(self, node: ast.AST) -> bool:
        """Whether ``node`` runs on the event loop: its nearest enclosing
        function is ``async def`` (a nested sync ``def`` opts back out)."""
        return isinstance(self.enclosing_function(node), ast.AsyncFunctionDef)

    def enclosing_handler(self, node: ast.AST) -> ast.ExceptHandler | None:
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, ast.ExceptHandler):
                return ancestor
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return None  # a nested def is a fresh raise context
        return None

    def symbol_of(self, node: ast.AST) -> str:
        parts = []
        if isinstance(node, _SCOPE_NODES):
            parts.append(node.name)
        for ancestor in self.ancestors(node):
            if isinstance(ancestor, _SCOPE_NODES):
                parts.append(ancestor.name)
        return ".".join(reversed(parts))

    def functions(self) -> Iterator[ast.FunctionDef | ast.AsyncFunctionDef]:
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node

    def body_nodes(
        self, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> Iterator[ast.AST]:
        """Walk a function's own body, not descending into nested defs."""
        stack: list[ast.AST] = list(ast.iter_child_nodes(func))
        while stack:
            node = stack.pop()
            if isinstance(node, _SCOPE_NODES):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    # -- suppression ---------------------------------------------------------

    def _parse_noqa(self) -> dict[int, set[str] | None]:
        """``{lineno: {rule ids}}``; ``None`` means every rule."""
        table: dict[int, set[str] | None] = {}
        for lineno, line in enumerate(self.lines, start=1):
            match = _NOQA.search(line)
            if not match:
                continue
            rules = match.group("rules")
            if rules is None:
                table[lineno] = None
            else:
                table[lineno] = {
                    piece.strip() for piece in rules.split(",") if piece.strip()
                }
        return self._spread_noqa_over_statements(table)

    def _statement_spans(self) -> Iterator[tuple[int, int]]:
        """Physical line ranges of each logical statement: the full span
        for simple statements, the decorator+header lines for compound
        ones (their bodies are separate statements)."""
        for node in ast.walk(self.tree):
            if not isinstance(node, ast.stmt):
                continue
            start = node.lineno
            for decorator in getattr(node, "decorator_list", ()):
                start = min(start, decorator.lineno)
            body = getattr(node, "body", None)
            if isinstance(body, list) and body and isinstance(body[0], ast.stmt):
                end = max(start, body[0].lineno - 1)
            else:
                end = getattr(node, "end_lineno", None) or node.lineno
            if end > start:
                yield start, end

    def _spread_noqa_over_statements(
        self, table: dict[int, set[str] | None]
    ) -> dict[int, set[str] | None]:
        """A noqa on *any* physical line of a multi-line statement
        suppresses findings reported on every line of that statement —
        a decorated def's finding lands on the ``def`` line but the
        comment may only fit on the decorator or closing-paren line."""
        if not table:
            return table
        spread: dict[int, set[str] | None] = dict(table)
        for start, end in self._statement_spans():
            hits = [
                table[line] for line in range(start, end + 1) if line in table
            ]
            if not hits:
                continue
            merged: set[str] | None
            if any(hit is None for hit in hits):
                merged = None
            else:
                merged = set()
                for hit in hits:
                    merged |= hit  # type: ignore[arg-type]
            for line in range(start, end + 1):
                if merged is None:
                    spread[line] = None
                    continue
                existing = spread.get(line, set())
                if existing is not None:
                    spread[line] = set(existing) | merged
        return spread

    def suppressed(self, finding: Finding) -> bool:
        rules = self._noqa.get(finding.line, ())
        return rules is None or finding.rule in rules


def dotted_name(expr: ast.AST) -> str:
    """``a.b.c`` for an attribute chain rooted at a Name; ``""`` otherwise.

    Chains rooted in calls or subscripts (``open(p).read``) resolve to
    the readable suffix prefixed with ``()`` so rules can still match on
    the tail without mistaking it for a module path.
    """
    parts: list[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    elif parts:
        parts.append("()")
    return ".".join(reversed(parts))


def call_name(call: ast.Call) -> str:
    """The last component of a call's function: ``fsync_file``, ``sleep``."""
    func = call.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


def analyze_modules(
    contexts: list[ModuleContext], rules: Iterable[Rule]
) -> list[Finding]:
    """Run ``rules`` over parsed modules; noqa applied, unsorted.

    Syntactic rules see one module at a time; flow rules additionally
    share a single :class:`~repro.analysis.flow.program.ProgramContext`
    spanning every module of the scan, so call edges resolve across
    files and interprocedural summaries are computed once.
    """
    rules = list(rules)
    program: "ProgramContext" | None = None
    if any(isinstance(rule, FlowRule) for rule in rules):
        from repro.analysis.flow.program import ProgramContext

        program = ProgramContext(contexts)
    findings: list[Finding] = []
    for ctx in contexts:
        for rule in rules:
            if not rule.applies_to(ctx):
                continue
            if isinstance(rule, FlowRule) and program is not None:
                produced = rule.check_flow(program, ctx)
            else:
                produced = rule.check(ctx)
            for finding in produced:
                if not ctx.suppressed(finding):
                    findings.append(finding)
    return findings


def analyze_source(
    source: str, rel_path: str, rules: Iterable[Rule]
) -> list[Finding]:
    """Run ``rules`` over one module's source; noqa already applied."""
    return analyze_modules([ModuleContext(rel_path, source)], rules)


def iter_python_files(paths: Iterable[str | Path], root: Path) -> Iterator[Path]:
    """Expand files/directories into a deterministic ``.py`` file list."""
    seen = set()
    for entry in paths:
        path = Path(entry)
        if not path.is_absolute():
            path = root / path
        if path.is_dir():
            candidates = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            if "__pycache__" in candidate.parts:
                continue
            resolved = candidate.resolve()
            if resolved not in seen:
                seen.add(resolved)
                yield candidate


def analyze_paths(
    paths: Iterable[str | Path],
    rules: Iterable[Rule],
    *,
    root: str | Path | None = None,
) -> tuple[list[Finding], list[str]]:
    """Scan files and directories; returns ``(findings, skipped)``.

    ``skipped`` lists files that could not be read or parsed (reported,
    never silently dropped — an unparseable file would otherwise read
    as "clean").  Paths in findings are relative to ``root`` (default:
    the current directory) when possible.
    """
    root_path = Path(root) if root is not None else Path.cwd()
    rules = list(rules)
    contexts: list[ModuleContext] = []
    skipped: list[str] = []
    for path in iter_python_files(paths, root_path):
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            skipped.append(f"{path}: unreadable: {exc}")
            continue
        try:
            rel = path.resolve().relative_to(root_path.resolve()).as_posix()
        except ValueError:
            rel = path.as_posix()
        try:
            contexts.append(ModuleContext(rel, source))
        except SyntaxError as exc:
            skipped.append(f"{rel}: syntax error: {exc}")
    findings = analyze_modules(contexts, rules)
    return sorted(findings, key=Finding.sort_key), skipped
