"""``repro.analysis`` — AST-based invariant linting for this codebase.

The runtime suites prove the paper-critical invariants *dynamically*
(fault-injection sweeps, chaos runs); this package checks the same
invariants *statically*, at commit time, the way a sanitizer would in a
compiled stack:

==========  =============================================================
RPR001      un-fsynced low-level writes on durable ``storage/`` paths
RPR002      blocking calls inside ``async def`` (event-loop stalls)
RPR003      storage errors without ``path=`` context / ``from`` chaining
RPR004      shared-index mutation outside event-loop serialisation
RPR005      set iteration feeding worker partitioning (nondeterminism)
RPR006      broad excepts that swallow without re-raise or record
RPR007      arithmetic that could turn an over-estimate into an under-estimate
RPR008      journal writes outside the replication log funnel
RPR009      process pools spawned outside ``core/pool.py``
RPR010      shard dial sites outside the router/client
RPR011      unbounded awaits on serving paths
RPR012      shared-state read/await/mutate interleavings (flow)
RPR013      response frames reachable before the fsync barrier (flow)
RPR014      pool/shared-memory lifecycle leaks (flow)
RPR015      outbound dials not dominated by a deadline stamp (flow)
==========  =============================================================

The RPR012-RPR015 rules are *flow-sensitive*: they run on per-function
CFGs, a repo call graph, dominators and reaching definitions from
``repro.analysis.flow`` (see docs/static_analysis.md, "The flow
engine").

Run it with ``python -m repro.tools.lint src tests`` or
``repro-mine lint``; see ``docs/static_analysis.md`` for the rule
catalog, suppression syntax, and the baseline workflow.
"""

from repro.analysis.baseline import Baseline, BaselineEntry, BaselineError
from repro.analysis.engine import (
    FlowRule,
    ModuleContext,
    Rule,
    analyze_modules,
    analyze_paths,
    analyze_source,
)
from repro.analysis.findings import Finding, render
from repro.analysis.rules import ALL_RULES, rules_by_id

__all__ = [
    "ALL_RULES",
    "Baseline",
    "BaselineEntry",
    "BaselineError",
    "Finding",
    "FlowRule",
    "ModuleContext",
    "Rule",
    "analyze_modules",
    "analyze_paths",
    "analyze_source",
    "render",
    "rules_by_id",
]
