"""``repro.analysis`` — AST-based invariant linting for this codebase.

The runtime suites prove the paper-critical invariants *dynamically*
(fault-injection sweeps, chaos runs); this package checks the same
invariants *statically*, at commit time, the way a sanitizer would in a
compiled stack:

==========  =============================================================
RPR001      un-fsynced low-level writes on durable ``storage/`` paths
RPR002      blocking calls inside ``async def`` (event-loop stalls)
RPR003      storage errors without ``path=`` context / ``from`` chaining
RPR004      shared-index mutation outside event-loop serialisation
RPR005      set iteration feeding worker partitioning (nondeterminism)
RPR006      broad excepts that swallow without re-raise or record
RPR007      arithmetic that could turn an over-estimate into an under-estimate
==========  =============================================================

Run it with ``python -m repro.tools.lint src tests`` or
``repro-mine lint``; see ``docs/static_analysis.md`` for the rule
catalog, suppression syntax, and the baseline workflow.
"""

from repro.analysis.baseline import Baseline, BaselineEntry, BaselineError
from repro.analysis.engine import (
    ModuleContext,
    Rule,
    analyze_paths,
    analyze_source,
)
from repro.analysis.findings import Finding, render
from repro.analysis.rules import ALL_RULES, rules_by_id

__all__ = [
    "ALL_RULES",
    "Baseline",
    "BaselineEntry",
    "BaselineError",
    "Finding",
    "ModuleContext",
    "Rule",
    "analyze_paths",
    "analyze_source",
    "render",
    "rules_by_id",
]
