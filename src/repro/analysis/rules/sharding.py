"""RPR010 — shard fan-out stays behind the router and the clients.

The scatter-gather contract (DESIGN.md §10) holds because exactly one
place dials shards and merges their answers: the router
(``service/shard/router.py``), whose merges are proven exact and whose
failure handling converts unreachable shards into the typed ``partial``
error.  The blocking clients (``service/client.py``) are the sanctioned
caller-side transport.  Any *other* service module that opens its own
socket or asyncio connection can reach a shard directly — bypassing the
circuit breakers, the follower failover, the range bookkeeping, and the
split-brain fencing the ShardMap provides — and serve an answer that
silently covers a subset of the transaction range.

The rule flags any call in ``service/`` modules whose final dotted
component is ``open_connection``, ``create_connection``, or ``socket``
outside the sanctioned homes.  ``service/replication.py`` predates the
router and owns its own tailing connection; its one dial site is
carried in the baseline with a justification rather than sanctioned
wholesale, so new dial sites there still fire.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import ModuleContext, Rule, call_name, dotted_name
from repro.analysis.findings import Finding

#: Callables that open a raw connection to a shard (or anything else).
_RAW_DIAL_CALLS = {"open_connection", "create_connection", "socket"}

#: The modules allowed to dial: the router's ShardLink and the blocking
#: client transports.
_SANCTIONED_SUFFIXES = ("service/shard/router.py", "service/client.py")


class ShardFanoutOutsideRouter(Rule):
    id = "RPR010"
    name = "shard-fanout-outside-router"
    severity = "error"
    rationale = (
        "service modules must not open their own connections; shard "
        "fan-out belongs to the router (breakers, failover, range "
        "accounting) and caller transport to the sanctioned clients"
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return "service/" in ctx.rel_path and not ctx.rel_path.endswith(
            _SANCTIONED_SUFFIXES
        )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for func in ctx.functions():
            for node in ctx.body_nodes(func):
                if not isinstance(node, ast.Call):
                    continue
                dotted = dotted_name(node.func) or call_name(node) or ""
                if dotted.rsplit(".", 1)[-1] in _RAW_DIAL_CALLS:
                    yield self.finding(
                        ctx,
                        node,
                        f"{dotted} called in {func.name}(): service modules "
                        f"must not dial connections themselves — shard "
                        f"fan-out goes through service/shard/router.py and "
                        f"client transport through service/client.py",
                    )
