"""RPR014 — pool/shared-memory acquired on a path that can exit unreleased.

``WorkerPool`` owns OS processes; a shared-memory export owns a kernel
segment that outlives the interpreter unless unlinked.  The lifecycle
discipline in ``core/pool.py`` / ``core/parallel.py`` is: every
acquisition either (a) reaches an explicit release (``close`` /
``unlink`` / ``shutdown``), (b) registers a finalizer or close hook
(``weakref.finalize``, ``atexit.register``, ``add_close_hook``), or
(c) **escapes to an owner** — returned to the caller, stored on
``self`` or in a registry — that carries the obligation.  This rule
walks every CFG path from an acquisition to the function's exits
(normal *and* exceptional: an export followed by a raising copy is
exactly how segments leak) and fires when a path reaches an exit with
the resource still anonymous and unreleased.

Reaching definitions keep the credit honest: a ``shm.close()`` only
counts as releasing *this* acquisition if the acquisition's binding of
``shm`` can still be live there — releases of a later rebinding do not
retroactively excuse the first segment.

Release semantics are best-effort by design: merely *reaching* a
release call satisfies the path even if the release itself could raise
(attempted cleanup is the sanctioned pattern; a close that blows up is
not a leak the author can do more about).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import (
    FlowRule,
    ModuleContext,
    call_name,
    dotted_name,
)
from repro.analysis.findings import Finding
from repro.analysis.flow.callgraph import FunctionInfo
from repro.analysis.flow.cfg import CFG, FLOW, iter_stmt_nodes
from repro.analysis.flow.dataflow import reaching_definitions
from repro.analysis.flow.program import ProgramContext

#: Method calls on the resource that release it (or hand off cleanup).
_RELEASE_METHODS = {
    "close",
    "unlink",
    "shutdown",
    "terminate",
    "release",
    "add_close_hook",
}

#: Callables that register cleanup when the resource is an argument.
_FINALIZER_CALLS = {"finalize", "register", "closing", "push"}


def _acquisition_call(node: ast.AST, factories: set[str]) -> str | None:
    """A call that creates an owned resource: ``WorkerPool(...)``,
    ``SharedMemory(create=True)``, or a resource-factory helper."""
    if not isinstance(node, ast.Call):
        return None
    name = call_name(node)
    if name == "WorkerPool":
        return "WorkerPool"
    if name == "SharedMemory":
        for kw in node.keywords:
            if (
                kw.arg == "create"
                and isinstance(kw.value, ast.Constant)
                and kw.value.value
            ):
                return "SharedMemory(create=True)"
        return None
    if name in factories:
        return f"{name}()"
    return None


def _names_in(expr: ast.AST) -> set[str]:
    return {
        node.id for node in ast.walk(expr) if isinstance(node, ast.Name)
    }


def _returned_resource_names(
    info: FunctionInfo, factories: set[str]
) -> set[str]:
    """Names bound to a direct acquisition inside ``info``'s body."""
    acquired: set[str] = set()
    for node in info.ctx.body_nodes(info.node):
        if not isinstance(node, ast.Assign):
            continue
        if _acquisition_call(node.value, factories) is None:
            continue
        for target in node.targets:
            if isinstance(target, ast.Name):
                acquired.add(target.id)
    return acquired


def _is_resource_factory(info: FunctionInfo) -> bool:
    """Whether the function acquires a resource and returns it — its
    call sites then own the acquisition.

    A function that *also* stores the acquisition on an attribute or in
    a registry (``_BUILD_POOLS[key] = created``) is a **lease**, not a
    factory: the registry keeps ownership and callers merely borrow, so
    its call sites carry no release obligation.
    """
    acquired = _returned_resource_names(info, set())
    if not acquired:
        return False
    returns_it = False
    for node in info.ctx.body_nodes(info.node):
        if isinstance(node, ast.Assign):
            if _names_in(node.value) & acquired and any(
                isinstance(t, (ast.Attribute, ast.Subscript))
                for t in node.targets
            ):
                return False
        elif isinstance(node, ast.Return) and node.value is not None:
            if _names_in(node.value) & acquired:
                returns_it = True
    return returns_it


class UnreleasedPoolOrShm(FlowRule):
    id = "RPR014"
    name = "unreleased-pool-or-shm"
    severity = "error"
    rationale = (
        "a WorkerPool/shared-memory acquisition with an exit path that "
        "never releases, registers a finalizer, or hands the resource "
        "to an owner leaks processes or kernel segments"
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return "core/" in ctx.rel_path or "service/" in ctx.rel_path

    def check_flow(
        self, program: ProgramContext, ctx: ModuleContext
    ) -> Iterator[Finding]:
        factories = program.cache(
            "rpr014.factories",
            lambda: {
                info.qualname.rsplit(".", 1)[-1]
                for info in program.callgraph.functions.values()
                if _is_resource_factory(info)
            },
        )
        for func in ctx.functions():
            yield from self._check_function(program, ctx, func, factories)

    def _check_function(
        self,
        program: ProgramContext,
        ctx: ModuleContext,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        factories: set[str],
    ) -> Iterator[Finding]:
        cfg = program.cfg(func)
        acquisitions: list[tuple[int, ast.stmt, str, set[str]]] = []
        for node in cfg.stmt_nodes():
            stmt = node.stmt
            if stmt is None or not isinstance(stmt, ast.stmt):
                continue
            for sub in iter_stmt_nodes(stmt):
                what = _acquisition_call(sub, factories)
                if what is None:
                    continue
                names = self._tracked_names(stmt, sub)
                if names is None:
                    continue  # escaped at birth (self.x = ..., registry)
                acquisitions.append((node.idx, stmt, what, names))
                break
        if not acquisitions:
            return
        reaching = None
        for acq_idx, stmt, what, names in acquisitions:
            if reaching is None:
                reaching = reaching_definitions(cfg)
            released = self._release_nodes(
                cfg, acq_idx, names, reaching
            )
            # Start from the acquisition's *flow* successors only: if
            # the constructor itself raises, nothing was acquired, so
            # its own exception edge is not a leak path.
            starts = [
                dst
                for dst, kind in cfg.successors(acq_idx)
                if kind == FLOW
            ]
            leaky = set(starts) | cfg.reachable_from(
                starts,
                blocked=lambda i: i in released,
                enter_starts=True,
                exc_escapes_blocked=False,
            )
            if cfg.exit in leaky or cfg.raise_exit in leaky:
                exit_kind = (
                    "an exception path"
                    if cfg.exit not in leaky
                    else "an exit path"
                )
                yield self.finding(
                    ctx,
                    stmt,
                    f"{what} acquired here can leave the function on "
                    f"{exit_kind} without close/unlink, a registered "
                    f"finalizer, or an owner taking the handle — wrap "
                    f"the post-acquisition steps so every exit releases "
                    f"or registers cleanup",
                )

    @staticmethod
    def _tracked_names(stmt: ast.stmt, call: ast.AST) -> set[str] | None:
        """Local names bound to the acquisition, or ``None`` when the
        statement already hands it to an owner (attribute/subscript
        target, with-statement context manager, direct argument to a
        finalizer registration)."""
        if isinstance(stmt, ast.Assign) and stmt.value is call:
            names: set[str] = set()
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
                elif isinstance(target, (ast.Attribute, ast.Subscript)):
                    return None
                elif isinstance(target, (ast.Tuple, ast.List)):
                    for elt in target.elts:
                        if isinstance(elt, ast.Name):
                            names.add(elt.id)
                        elif isinstance(elt, (ast.Attribute, ast.Subscript)):
                            return None
            if names:
                return names
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if call in ast.walk(item.context_expr):
                    return None  # the with block owns cleanup
        for node in iter_stmt_nodes(stmt):
            if (
                isinstance(node, ast.Call)
                and node is not call
                and call_name(node) in _FINALIZER_CALLS
                and any(call in ast.walk(arg) for arg in node.args)
            ):
                return None
        # Bare expression or non-name binding: nothing holds the handle.
        return set()

    @staticmethod
    def _release_nodes(
        cfg: CFG,
        acq_idx: int,
        names: set[str],
        reaching: dict[int, "frozenset[tuple[str, int]]"],
    ) -> set[int]:
        """CFG nodes that release the acquisition or pass it to an
        owner, credited only where the acquisition's binding reaches."""
        released: set[int] = set()
        for node in cfg.stmt_nodes():
            stmt = node.stmt
            if stmt is None or node.idx == acq_idx:
                continue
            live = {
                name
                for name in names
                if (name, acq_idx) in reaching.get(node.idx, frozenset())
            }
            if not live:
                continue
            if _stmt_releases(stmt, live):
                released.add(node.idx)
        return released


def _stmt_releases(stmt: ast.AST, live: set[str]) -> bool:
    """Whether the statement releases/escapes any live resource name."""
    for node in iter_stmt_nodes(stmt):
        if isinstance(node, ast.Call):
            # pool.close(), shm.unlink(), pool.add_close_hook(...)
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _RELEASE_METHODS
            ):
                root = dotted_name(func.value).split(".")[0]
                if root in live:
                    return True
            # weakref.finalize(obj, cb, shm) / atexit.register / closing
            if call_name(node) in _FINALIZER_CALLS and any(
                _names_in(arg) & live for arg in node.args
            ):
                return True
        elif isinstance(node, ast.Return) and node.value is not None:
            if _names_in(node.value) & live:
                return True  # ownership transfers to the caller
        elif isinstance(node, ast.Assign):
            if _names_in(node.value) & live:
                for target in node.targets:
                    if isinstance(target, (ast.Attribute, ast.Subscript)):
                        return True  # stored on an owner / registry
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if _names_in(item.context_expr) & live:
                return True
    return False
