"""RPR015 — outbound dial without a dominating deadline stamp/check.

PR 9's overload contract has one floor the whole proof stands on: **an
expired leg never dials**.  Every outbound connection in the serving
layer must sit below a deadline fact — the propagated
``CURRENT_DEADLINE`` budget consulted, a ``Deadline`` re-stamp, a
``remaining``/``expired`` check — that *dominates* the dial: on every
path into the connect, the budget was looked at first.  A dial a
request can reach without crossing such a node is shard-side work an
already-gone caller can still spawn.

The rule finds ``open_connection`` / ``create_connection`` calls in
``service/`` modules and demands a deadline-vocabulary statement in the
dial's dominator set.  Helpers get one level of call-graph grace: a
bare connector like ``ShardLink._dial`` passes when **every** resolved
call site of it is itself dominated by a deadline fact in its caller
(the `request()` pattern: check ``remaining``, then dial).  Dial sites
with no in-repo callers (entry points, background tailers) must carry
the guard themselves or a baseline justification naming where the
bound actually lives.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import FlowRule, ModuleContext, call_name
from repro.analysis.findings import Finding
from repro.analysis.flow.callgraph import FunctionInfo
from repro.analysis.flow.cfg import CFG, iter_stmt_nodes
from repro.analysis.flow.program import ProgramContext

#: Call names that open an outbound connection.
_DIAL_NAMES = {"open_connection", "create_connection"}

#: Identifiers whose presence marks a statement as a deadline fact.
_DEADLINE_WORDS = {
    "deadline",
    "deadline_ts",
    "deadline_ms",
    "budget",
    "expired",
    "expires_at",
    "remaining",
    "remaining_s",
    "remaining_ms",
    "CURRENT_DEADLINE",
    "Deadline",
    "from_budget_ms",
}


def _mentions_deadline(stmt: ast.AST) -> bool:
    for node in iter_stmt_nodes(stmt):
        if isinstance(node, ast.Name) and node.id in _DEADLINE_WORDS:
            return True
        if isinstance(node, ast.Attribute) and node.attr in _DEADLINE_WORDS:
            return True
    return False


def _deadline_guard_nodes(cfg: CFG) -> set[int]:
    return {
        node.idx
        for node in cfg.stmt_nodes()
        if node.stmt is not None and _mentions_deadline(node.stmt)
    }


def _dial_nodes(cfg: CFG) -> list[tuple[int, ast.Call]]:
    dials: list[tuple[int, ast.Call]] = []
    for node in cfg.stmt_nodes():
        if node.stmt is None:
            continue
        for sub in iter_stmt_nodes(node.stmt):
            if isinstance(sub, ast.Call) and call_name(sub) in _DIAL_NAMES:
                dials.append((node.idx, sub))
    return dials


class UndisciplinedDial(FlowRule):
    id = "RPR015"
    name = "dial-without-deadline-stamp"
    severity = "error"
    rationale = (
        "an outbound dial not dominated by a deadline stamp/check lets "
        "an already-expired request spawn connection work downstream"
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return "service/" in ctx.rel_path

    def check_flow(
        self, program: ProgramContext, ctx: ModuleContext
    ) -> Iterator[Finding]:
        for func in ctx.functions():
            cfg = program.cfg(func)
            dials = _dial_nodes(cfg)
            if not dials:
                continue
            doms = program.dominators(func)
            guards = _deadline_guard_nodes(cfg)
            for dial_idx, call in dials:
                dominated = any(
                    g in doms.get(dial_idx, ()) and g != dial_idx
                    for g in guards
                )
                if dominated:
                    continue
                if self._callers_guard(program, ctx, func):
                    continue
                yield self.finding(
                    ctx,
                    call,
                    f"{call_name(call)}() is reachable with no deadline "
                    f"stamp/check dominating it (and no guarded caller "
                    f"covers every call site): an expired leg must never "
                    f"dial — consult CURRENT_DEADLINE/Deadline before "
                    f"connecting, or baseline with the bound's location",
                )

    def _callers_guard(
        self,
        program: ProgramContext,
        ctx: ModuleContext,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> bool:
        """One level of interprocedural grace: every resolved call site
        of ``func`` is dominated by a deadline fact in its caller."""
        info = program.function_info(ctx, func)
        if info is None:
            return False
        graph = program.callgraph
        callers = graph.callers(info.fid)
        if not callers:
            return False
        for caller_fid in callers:
            caller = graph.functions[caller_fid]
            caller_cfg = program.cfg(caller.node)
            caller_doms = program.dominators(caller.node)
            caller_guards = _deadline_guard_nodes(caller_cfg)
            sites = [
                caller_cfg.node_of(self._enclosing_stmt(caller, site_call))
                for site_call, callee in graph.call_sites(caller)
                if callee == info.fid
            ]
            for site_idx in sites:
                if site_idx is None:
                    return False
                if not any(
                    g in caller_doms.get(site_idx, ()) and g != site_idx
                    for g in caller_guards
                ):
                    return False
        return True

    @staticmethod
    def _enclosing_stmt(caller: FunctionInfo, call: ast.Call) -> ast.AST:
        """The statement whose CFG node models ``call``'s evaluation."""
        node: ast.AST = call
        parent = caller.ctx.parent(node)
        while parent is not None and not isinstance(parent, ast.stmt):
            node = parent
            parent = caller.ctx.parent(node)
        return parent if isinstance(parent, ast.stmt) else node
