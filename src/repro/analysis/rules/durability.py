"""RPR001 — un-fsynced low-level writes on durable paths.

The crash-safety layer's contract (PR 1/PR 4, DESIGN.md §8) is that a
durable write path reaches an fsync barrier before it returns: an
``os.write``/``os.pwrite``/``write_all`` that is ACKed without one can
be lost by ``kill -9`` even though the caller saw success.  This rule
walks every function in ``storage/`` modules and flags low-level writes
in functions that never touch a durability primitive
(:func:`repro.storage.durable.fsync_file` and friends, ``os.fsync``, or
a writer's ``sync()``/``flush()+fsync`` pair).

Buffered ``fh.write(...)`` calls are deliberately out of scope: the
format writers stage bytes through buffered handles and pay their
barrier in ``sync()``/``close()``; flagging every buffered write would
drown the signal.  The rule targets the calls that bypass buffering —
exactly where a missing barrier is both most tempting and most silent.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import ModuleContext, Rule, call_name, dotted_name
from repro.analysis.findings import Finding

#: Direct, unbuffered write entry points.
_LOW_LEVEL_WRITES = {"os.write", "os.pwrite", "os.writev", "os.pwritev"}
_WRITE_NAMES = {"write_all"}

#: Any of these in the same function counts as reaching a barrier.
_BARRIER_NAMES = {
    "fsync",
    "fsync_file",
    "fsync_path",
    "fsync_dir",
    "sync",
    "fdatasync",
    "durable_replace",
    "durable_write_bytes",
}


class UnfsyncedDurableWrite(Rule):
    id = "RPR001"
    name = "unfsynced-durable-write"
    severity = "error"
    rationale = (
        "durable storage paths must reach an fsync barrier before "
        "returning, or an ACKed write can vanish on power loss"
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return "storage/" in ctx.rel_path

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for func in ctx.functions():
            writes: list[ast.Call] = []
            has_barrier = False
            for node in ctx.body_nodes(func):
                if not isinstance(node, ast.Call):
                    continue
                name = call_name(node)
                if (
                    dotted_name(node.func) in _LOW_LEVEL_WRITES
                    or name in _WRITE_NAMES
                ):
                    writes.append(node)
                elif name in _BARRIER_NAMES:
                    has_barrier = True
            if has_barrier:
                continue
            for write in writes:
                yield self.finding(
                    ctx,
                    write,
                    f"low-level write ({dotted_name(write.func) or call_name(write)}) "
                    f"in {func.name}() never reaches an fsync barrier "
                    f"(durable.fsync_* / os.fsync / .sync()) before returning",
                )
