"""RPR008 — journal writes in the service layer must go through
:class:`~repro.service.replication.ReplicationLog`.

Replication correctness (DESIGN.md §9) rests on one funnel: every
journal mutation in the serving layer happens through the
``ReplicationLog`` append/salvage API, so a follower tailing the
journal sees exactly the records the primary ACKed, in order, with
their original tids.  A service module that constructs a
``TransactionFileWriter`` of its own — or calls ``salvage_txfile``
directly — can mutate the journal behind the log's tail reader and
break the follower's "indexed record ⇒ complete record" invariant.

The rule flags any call in ``service/`` modules whose final dotted
component is ``TransactionFileWriter`` or ``salvage_txfile``.  The one
sanctioned home for those calls is ``service/replication.py`` itself,
which owns the funnel; the storage layer (``storage/``) is out of
scope — the invariant is about the *serving* processes that share a
journal with a tailing follower.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import ModuleContext, Rule, call_name, dotted_name
from repro.analysis.findings import Finding

#: Callables that mutate a journal file pair outside the funnel.
_RAW_JOURNAL_CALLS = {"TransactionFileWriter", "salvage_txfile"}

#: The module that owns the funnel and may use the raw API.
_SANCTIONED_SUFFIX = "service/replication.py"


class JournalWriteOutsideLog(Rule):
    id = "RPR008"
    name = "journal-write-outside-replication-log"
    severity = "error"
    rationale = (
        "service-layer journal mutations must go through the "
        "ReplicationLog API, or a tailing follower can observe a "
        "journal rewritten behind its reader"
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return (
            "service/" in ctx.rel_path
            and not ctx.rel_path.endswith(_SANCTIONED_SUFFIX)
        )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for func in ctx.functions():
            for node in ctx.body_nodes(func):
                if not isinstance(node, ast.Call):
                    continue
                dotted = dotted_name(node.func) or call_name(node) or ""
                if dotted.rsplit(".", 1)[-1] in _RAW_JOURNAL_CALLS:
                    yield self.finding(
                        ctx,
                        node,
                        f"{dotted} called in {func.name}(): service-layer "
                        f"journal writes must go through "
                        f"repro.service.replication.ReplicationLog "
                        f"(append/salvage), not the raw txfile API",
                    )
