"""The rule registry: every repo invariant the linter enforces.

Rule ids are stable (``RPR001``...) and referenced by noqa comments and
baseline entries; never renumber an existing rule.
"""

from __future__ import annotations

from repro.analysis.engine import Rule
from repro.analysis.rules.ackbarrier import AckBeforeBarrier
from repro.analysis.rules.asyncsafety import BlockingCallInAsync
from repro.analysis.rules.concurrency import (
    NondeterministicPartitioning,
    UnsanctionedPoolSpawn,
    UnserialisedIndexMutation,
)
from repro.analysis.rules.deadlines import UndisciplinedDial
from repro.analysis.rules.durability import UnfsyncedDurableWrite
from repro.analysis.rules.errorhygiene import (
    StorageErrorContext,
    SwallowedException,
)
from repro.analysis.rules.estimates import EstimateSoundness
from repro.analysis.rules.interleaving import AwaitInterleavingRace
from repro.analysis.rules.lifecycle import UnreleasedPoolOrShm
from repro.analysis.rules.loadsafety import UnboundedAwaitInService
from repro.analysis.rules.replication import JournalWriteOutsideLog
from repro.analysis.rules.sharding import ShardFanoutOutsideRouter

#: One instance per rule, in id order.
ALL_RULES: list[Rule] = [
    UnfsyncedDurableWrite(),
    BlockingCallInAsync(),
    StorageErrorContext(),
    UnserialisedIndexMutation(),
    NondeterministicPartitioning(),
    SwallowedException(),
    EstimateSoundness(),
    JournalWriteOutsideLog(),
    UnsanctionedPoolSpawn(),
    ShardFanoutOutsideRouter(),
    UnboundedAwaitInService(),
    AwaitInterleavingRace(),
    AckBeforeBarrier(),
    UnreleasedPoolOrShm(),
    UndisciplinedDial(),
]


def rules_by_id(ids: list[str] | None = None) -> list[Rule]:
    """The registered rules, optionally filtered to ``ids``.

    Unknown ids raise ``ValueError`` so a typoed ``--rule RPR0010`` is
    an error, not a silently empty scan.
    """
    if not ids:
        return list(ALL_RULES)
    known = {rule.id: rule for rule in ALL_RULES}
    unknown = [rule_id for rule_id in ids if rule_id not in known]
    if unknown:
        raise ValueError(
            f"unknown rule id(s) {unknown}; known: {sorted(known)}"
        )
    return [known[rule_id] for rule_id in ids]


__all__ = ["ALL_RULES", "rules_by_id"]
