"""RPR013 — ACK reachable after a buffered durable write, before its barrier.

The durability contract (DESIGN.md, ``storage/`` docstrings) is
*fsync-before-ACK*: once a success frame leaves the server, the write it
acknowledges must survive power loss — journal append, then ``sync()``,
then respond.  RPR001 checks the write/barrier pairing syntactically
inside one function; this rule checks the *ordering against the ACK*,
on every CFG path including exception edges: a ``write_frame`` that is
reachable after a buffered durable write without crossing a *completed*
barrier is an ACK the crash can orphan.

Path semantics matter here: a barrier call that **raises** did not act
as a barrier, so paths escaping a ``sync()`` through its exception edge
(into an ``except`` that answers the client anyway) still fire.  Helper
calls are traced through the call graph: a call to a helper that
transitively emits frames counts as an ACK site, and a call to a helper
that performs the barrier counts as a barrier.  A helper that both
writes and barriers internally (``apply_replicated``) is treated as a
barrier, not as an open write — its internal ordering is its own
function's obligation.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import (
    FlowRule,
    ModuleContext,
    call_name,
    dotted_name,
)
from repro.analysis.findings import Finding
from repro.analysis.flow.callgraph import FunctionInfo
from repro.analysis.flow.cfg import iter_stmt_nodes
from repro.analysis.flow.program import ProgramContext

#: Barrier call names (mirrors RPR001's vocabulary).
_BARRIER_NAMES = {
    "fsync",
    "fsync_file",
    "fsync_path",
    "fsync_dir",
    "sync",
    "fdatasync",
    "durable_replace",
    "durable_write_bytes",
}

#: Frame-emitting calls: the ACK leaves through one of these.
_ACK_NAMES = {"write_frame", "write_frame_sock"}

#: Receiver-name fragments marking a buffered *durable* write target.
_DURABLE_RECEIVERS = {"journal", "log", "wal"}


def _is_durable_write(node: ast.AST) -> bool:
    if not isinstance(node, ast.Call):
        return False
    name = call_name(node)
    func = node.func
    if isinstance(func, ast.Attribute):
        chain = set(dotted_name(func.value).split("."))
        if name in ("append", "write", "write_all") and (
            chain & _DURABLE_RECEIVERS
        ):
            return True
        if name in ("write", "pwrite") and "os" in chain:
            return True
    elif isinstance(func, ast.Name) and name == "write_all":
        return True
    return False


def _is_barrier(node: ast.AST) -> bool:
    return isinstance(node, ast.Call) and call_name(node) in _BARRIER_NAMES


def _is_ack(node: ast.AST) -> bool:
    return isinstance(node, ast.Call) and call_name(node) in _ACK_NAMES


def _function_acks(info: FunctionInfo) -> bool:
    return any(_is_ack(node) for node in info.ctx.body_nodes(info.node))


def _function_barriers(info: FunctionInfo) -> bool:
    return any(_is_barrier(node) for node in info.ctx.body_nodes(info.node))


class AckBeforeBarrier(FlowRule):
    id = "RPR013"
    name = "ack-before-barrier"
    severity = "error"
    rationale = (
        "a response frame reachable after a buffered durable write but "
        "before its fsync barrier acknowledges data a crash can lose"
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return "storage/" in ctx.rel_path or "service/" in ctx.rel_path

    def check_flow(
        self, program: ProgramContext, ctx: ModuleContext
    ) -> Iterator[Finding]:
        graph = program.callgraph
        acking_fids = program.cache(
            "rpr013.acking", lambda: graph.transitive(_function_acks)
        )
        barrier_fids = program.cache(
            "rpr013.barrier", lambda: graph.transitive(_function_barriers)
        )
        for func in ctx.functions():
            yield from self._check_function(
                program, ctx, func, acking_fids, barrier_fids
            )

    def _check_function(
        self,
        program: ProgramContext,
        ctx: ModuleContext,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        acking_fids: set[str],
        barrier_fids: set[str],
    ) -> Iterator[Finding]:
        cfg = program.cfg(func)
        writes: list[int] = []
        barriers: set[int] = set()
        acks: list[tuple[int, ast.AST]] = []
        for node in cfg.stmt_nodes():
            stmt = node.stmt
            if stmt is None:
                continue
            is_write = is_barrier = is_ack = False
            for sub in iter_stmt_nodes(stmt):
                if not isinstance(sub, ast.Call):
                    continue
                if _is_barrier(sub):
                    is_barrier = True
                elif _is_durable_write(sub):
                    is_write = True
                elif _is_ack(sub):
                    is_ack = True
                else:
                    callee = program.callgraph.resolve_call(ctx, func, sub)
                    if callee is None:
                        continue
                    if callee in barrier_fids:
                        # Helpers that barrier internally discharge the
                        # obligation even if they also write.
                        is_barrier = True
                    elif callee in acking_fids:
                        is_ack = True
            if is_barrier:
                barriers.add(node.idx)
            elif is_write:
                writes.append(node.idx)
            if is_ack and not is_barrier:
                acks.append((node.idx, stmt))
        if not writes or not acks:
            return
        for ack_idx, stmt in acks:
            if any(
                cfg.reaches(
                    w, ack_idx, blocked=lambda i: i in barriers
                )
                for w in writes
            ):
                yield self.finding(
                    ctx,
                    stmt,
                    "response frame reachable after a buffered durable "
                    "write with no completed fsync/commit barrier on the "
                    "path (exception edges count: a sync() that raises "
                    "did not act as a barrier) — barrier first, then ACK",
                )
