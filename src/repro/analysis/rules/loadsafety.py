"""RPR011 — no unbounded awaits on the serving path.

The overload model (DESIGN.md §11) only holds if every wait the
serving layer performs is *bounded*: an ``await`` on a queue, lock,
stream read, or drain with no deadline around it is a place where a
slow or dead peer pins a connection slot (or the whole serving loop's
progress on that task) forever — precisely the hang the deadline
propagation and admission machinery exist to rule out.

The rule flags ``await`` expressions in ``service/`` modules whose
awaited call's final dotted component is a known potentially-unbounded
primitive (``get``, ``acquire``, ``wait``, ``readexactly``, ``drain``,
``read_frame``...).  Awaits routed through ``asyncio.*`` combinators
(``asyncio.wait_for``, ``asyncio.wait``, ``asyncio.gather``) are
exempt: ``wait_for`` *is* the bounding construct, and the others
compose already-created tasks.  Sites that are bounded by an enclosing
construct the AST cannot see locally (a ``wait_for`` in the caller, a
socket timeout set at connect) are carried in the baseline with a
justification naming the bound — the point is that every such site is
*reviewed*, not that none exist.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import ModuleContext, Rule, dotted_name
from repro.analysis.findings import Finding

#: Final dotted components that can block without bound when awaited
#: bare: queue/lock primitives, stream reads, flow-control drains, and
#: this repo's own frame codec.
_UNBOUNDED_WAITS = {
    "get",
    "put",
    "acquire",
    "wait",
    "join",
    "readexactly",
    "readuntil",
    "readline",
    "read",
    "drain",
    "wait_closed",
    "read_frame",
    "write_frame",
}


class UnboundedAwaitInService(Rule):
    id = "RPR011"
    name = "unbounded-await-in-service"
    severity = "error"
    rationale = (
        "serving-path awaits on queues, locks, streams, and drains must "
        "be bounded (asyncio.wait_for, a propagated deadline, or a "
        "baseline-documented enclosing bound) or a slow peer pins the "
        "connection forever"
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return "service/" in ctx.rel_path

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for func in ctx.functions():
            for node in ctx.body_nodes(func):
                if not isinstance(node, ast.Await):
                    continue
                call = node.value
                if not isinstance(call, ast.Call):
                    continue
                dotted = dotted_name(call.func) or ""
                if dotted.startswith("asyncio."):
                    continue  # wait_for/wait/gather are the bounders
                if dotted.rsplit(".", 1)[-1] not in _UNBOUNDED_WAITS:
                    continue
                yield self.finding(
                    ctx,
                    node,
                    f"bare `await {dotted}(...)` in {func.name}() has no "
                    f"deadline: wrap it in asyncio.wait_for (or document "
                    f"the enclosing bound in the baseline) so a slow peer "
                    f"cannot pin this task forever",
                )
