"""RPR007 — operations that could turn an over-estimate into an under-estimate.

The paper's filter-and-refine correctness (Lemmas 1–4) rests on one
inequality: ``CountItemSet`` never *under*-estimates true support, so
pruning on the estimate never loses a frequent pattern.  Any arithmetic
that can pull a popcount-derived estimate *down* — subtracting from it,
or taking ``min()`` of it against something else — silently converts
"safe over-estimate" into "possible false dismissal", the one failure
mode the mining schemes cannot detect downstream.

This rule flags, in ``core/`` modules, subtraction and ``min()``
applied directly to a count-path call result (``popcount``,
``count_itemset``, ``count_with_constraint``, ``estimated_count``,
...).  Legitimate exact-side arithmetic (probe results, refine-phase
counts) operates on confirmed counts, not on the estimate, and does not
name these calls — and a genuinely sound transformation can carry a
``# repro: noqa(RPR007)`` with its proof obligation stated inline.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import ModuleContext, Rule, call_name
from repro.analysis.findings import Finding

#: Calls whose result is a never-under-estimating count (Lemmas 1-4).
_ESTIMATE_CALLS = {
    "popcount",
    "count_itemset",
    "count_and_vector",
    "count_with_constraint",
    "estimated_count",
    "estimated_count_where",
}


class EstimateSoundness(Rule):
    id = "RPR007"
    name = "estimate-soundness"
    severity = "error"
    rationale = (
        "subtracting from or min()-ing a popcount estimate can "
        "under-estimate support, breaking the Lemma 1-4 pruning guarantee"
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return "core/" in ctx.rel_path

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Sub):
                for side in (node.left, node.right):
                    name = self._estimate_call(side)
                    if name and side is node.left:
                        yield self.finding(
                            ctx,
                            node,
                            f"subtraction from a {name}() result can "
                            f"under-estimate support; the count path must "
                            f"only ever over-estimate (Lemmas 1-4)",
                        )
                    elif name:
                        yield self.finding(
                            ctx,
                            node,
                            f"subtracting a {name}() estimate from another "
                            f"value bakes an over-estimate into the result "
                            f"with inverted sign; derive the quantity from "
                            f"exact counts instead",
                        )
            elif isinstance(node, ast.Call) and call_name(node) == "min":
                for arg in node.args:
                    name = self._estimate_call(arg)
                    if name:
                        yield self.finding(
                            ctx,
                            node,
                            f"min() applied to a {name}() result can pull "
                            f"the estimate below true support; clamp only "
                            f"with provable upper bounds (e.g. "
                            f"n_transactions) via an exactness check",
                        )

    @staticmethod
    def _estimate_call(expr: ast.AST) -> str | None:
        if isinstance(expr, ast.Call):
            name = call_name(expr)
            if name in _ESTIMATE_CALLS:
                return name
        return None
