"""RPR003/RPR006 — typed-error context and broad-except hygiene.

**RPR003** enforces the storage-error contract from ``repro/errors.py``:
every :class:`StorageError` family raise carries ``path=`` (so
``repro-mine check``/``repair`` can act on the exact failure site
without parsing message strings), and any typed library error raised
inside an ``except`` handler chains the original with ``raise ... from``
(so a salvage log shows the root OSError, not just our wrapper).
``raise ... from None`` is accepted as an explicit, visible decision.

**RPR006** flags swallowed failures: bare ``except:``, an
``except Exception/BaseException`` whose body neither re-raises nor
references the captured exception (if it is not logged, recorded, or
re-raised, the failure simply evaporates), and
``contextlib.suppress(Exception/BaseException)`` — the with-statement
spelling of the same black hole.  Narrow excepts (``except OSError:``)
are out of scope: catching a *specific* failure and moving on is a
decision the type already documents.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import ModuleContext, Rule, call_name
from repro.analysis.findings import Finding

_STORAGE_ERRORS = {
    "StorageError",
    "CorruptFileError",
    "TornWriteError",
    "RecoveryError",
}
_CHAINED_ERRORS = _STORAGE_ERRORS | {
    "ServiceError",
    "ServiceProtocolError",
    "ConnectionClosedError",
    "ServiceTimeoutError",
    "DegradedError",
    "CircuitOpenError",
    "ParallelExecutionError",
    "ConfigurationError",
    "DatabaseMismatchError",
    "QueryError",
    "ReproError",
}
_BROAD = {"Exception", "BaseException"}


class StorageErrorContext(Rule):
    id = "RPR003"
    name = "storage-error-context"
    severity = "error"
    rationale = (
        "storage errors without path/offset context or exception "
        "chaining strip the information recovery tooling acts on"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Raise):
                continue
            exc = node.exc
            if not isinstance(exc, ast.Call):
                continue
            name = call_name(exc)
            if name in _STORAGE_ERRORS:
                keywords = {kw.arg for kw in exc.keywords if kw.arg}
                if "path" not in keywords:
                    yield self.finding(
                        ctx,
                        node,
                        f"{name} raised without path= context; attach the "
                        f"offending file (and offset= when known) so "
                        f"check/repair tooling can act on it",
                    )
            if name in _CHAINED_ERRORS:
                if ctx.enclosing_handler(node) is not None and node.cause is None:
                    yield self.finding(
                        ctx,
                        node,
                        f"{name} raised inside an except handler without "
                        f"'from' — chain the original exception "
                        f"(or 'from None' if suppression is deliberate)",
                    )


class SwallowedException(Rule):
    id = "RPR006"
    name = "swallowed-exception"
    severity = "error"
    rationale = (
        "a broad except that neither re-raises nor records the "
        "exception makes failures invisible"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ExceptHandler):
                yield from self._check_handler(ctx, node)
            elif isinstance(node, ast.Call):
                yield from self._check_suppress(ctx, node)

    def _check_handler(
        self, ctx: ModuleContext, handler: ast.ExceptHandler
    ) -> Iterator[Finding]:
        if handler.type is None:
            yield self.finding(
                ctx,
                handler,
                "bare 'except:' swallows everything including "
                "KeyboardInterrupt; catch a specific type",
            )
            return
        if not self._is_broad(handler.type):
            return
        if self._reraises(handler) or self._uses_exception(handler):
            return
        caught = (
            handler.type.id
            if isinstance(handler.type, ast.Name)
            else "Exception"
        )
        yield self.finding(
            ctx,
            handler,
            f"'except {caught}' neither re-raises nor references the "
            f"exception — log it, record it, or narrow the except",
        )

    def _check_suppress(
        self, ctx: ModuleContext, call: ast.Call
    ) -> Iterator[Finding]:
        if call_name(call) != "suppress":
            return
        for arg in call.args:
            if isinstance(arg, ast.Name) and arg.id in _BROAD:
                yield self.finding(
                    ctx,
                    call,
                    f"contextlib.suppress({arg.id}) silently swallows every "
                    f"failure in its block; suppress specific types or "
                    f"handle and log",
                )
                return

    @staticmethod
    def _is_broad(type_node: ast.AST) -> bool:
        nodes = (
            type_node.elts if isinstance(type_node, ast.Tuple) else [type_node]
        )
        return any(
            isinstance(node, ast.Name) and node.id in _BROAD for node in nodes
        )

    @staticmethod
    def _reraises(handler: ast.ExceptHandler) -> bool:
        return any(
            isinstance(node, ast.Raise)
            for stmt in handler.body
            for node in ast.walk(stmt)
        )

    @staticmethod
    def _uses_exception(handler: ast.ExceptHandler) -> bool:
        if handler.name is None:
            return False
        return any(
            isinstance(node, ast.Name) and node.id == handler.name
            for stmt in handler.body
            for node in ast.walk(stmt)
        )
