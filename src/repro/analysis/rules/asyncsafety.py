"""RPR002 — blocking calls inside ``async def``.

The serving layer's concurrency model (PR 3, ``service/handlers.py``
docstring) relies on every handler being loop-friendly: one blocking
call inside an ``async def`` stalls *every* connection the server is
multiplexing, turning a single slow disk or peer into whole-service
latency.  This rule flags the classic offenders lexically inside an
``async def``: ``time.sleep``, synchronous ``socket`` construction and
IO, ``subprocess`` calls, ``os.system``, and builtin ``open`` (the
request path must not do sync file IO; snapshot first, then hand off to
an executor).

A sync ``def`` nested inside an ``async def`` is *not* flagged: it runs
wherever it is called from (often a thread-pool executor), which is the
sanctioned escape hatch.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import ModuleContext, Rule, dotted_name
from repro.analysis.findings import Finding

#: Fully-dotted callables that block the thread they run on.
_BLOCKING_DOTTED = {
    "time.sleep": "time.sleep() stalls the event loop; use asyncio.sleep()",
    "os.system": "os.system() blocks; use asyncio.create_subprocess_shell()",
    "socket.socket": "sync socket construction on the loop; use loop transports",
    "socket.create_connection": (
        "sync connect blocks the loop; use asyncio.open_connection()"
    ),
    "socket.getaddrinfo": (
        "sync DNS resolution blocks the loop; use loop.getaddrinfo()"
    ),
    "subprocess.run": "subprocess.run() blocks; use asyncio.create_subprocess_exec()",
    "subprocess.call": "subprocess.call() blocks; use asyncio subprocesses",
    "subprocess.check_call": "blocks the loop; use asyncio subprocesses",
    "subprocess.check_output": "blocks the loop; use asyncio subprocesses",
    "urllib.request.urlopen": "sync HTTP blocks the loop",
}

#: Method names that are synchronous socket IO wherever they appear.
_BLOCKING_METHODS = {"recv", "recv_into", "sendto", "accept"}


class BlockingCallInAsync(Rule):
    id = "RPR002"
    name = "blocking-call-in-async"
    severity = "error"
    rationale = (
        "one blocking call inside an async handler stalls every "
        "connection the event loop is serving"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for func in ctx.functions():
            if not isinstance(func, ast.AsyncFunctionDef):
                continue
            for node in ctx.body_nodes(func):
                if not isinstance(node, ast.Call):
                    continue
                message = self._blocking_reason(node)
                if message is not None:
                    yield self.finding(
                        ctx,
                        node,
                        f"blocking call in async {func.name}(): {message}",
                    )

    @staticmethod
    def _blocking_reason(call: ast.Call) -> str | None:
        dotted = dotted_name(call.func)
        if dotted in _BLOCKING_DOTTED:
            return _BLOCKING_DOTTED[dotted]
        if isinstance(call.func, ast.Attribute):
            if call.func.attr in _BLOCKING_METHODS:
                return (
                    f"sync socket IO (.{call.func.attr}()) on the request "
                    f"path; use the asyncio stream APIs"
                )
        if isinstance(call.func, ast.Name) and call.func.id == "open":
            return (
                "builtin open() does sync file IO on the loop; read the "
                "bytes up front or run the IO in an executor"
            )
        return None
