"""RPR004/RPR005/RPR009 — event-loop serialisation and worker determinism.

**RPR004** guards the serving layer's lock-free concurrency model
(``service/handlers.py`` docstring): all shared-index mutation happens
on the event loop, so ``count`` and ``append`` serialise by
construction.  A ``self.index.insert(...)`` / ``self.miner.insert(...)``
reachable from a *sync* function in ``handlers.py``/``scrubber.py`` is
exactly how that model breaks — a worker thread would interleave with a
half-applied insert.  Direct writes to an index's ``epoch``/``_epoch``
are flagged for the same reason: the epoch is the cache-freshness token
and must only advance inside the index's own serialised ``insert``.
Functions that *are* only ever called from the loop (recovery helpers)
are documented false positives — baseline them with the call-path
justification rather than weakening the rule.

**RPR005** guards the parallel layer's determinism promise
(``core/parallel.py`` docstring, DESIGN.md): identical results and
statistics for any ``workers=N``.  Iterating a ``set``/``frozenset`` to
build worker partitions or merge order breaks it silently — Python set
order varies across processes with hash randomisation.  The rule flags
``for``/comprehension iteration directly over set expressions in
partitioning modules; wrap them in ``sorted(...)``.

**RPR009** guards the persistent-pool discipline (``core/pool.py``
docstring): spawning a ``ProcessPoolExecutor`` (or a raw
``multiprocessing`` ``Pool``) per call is exactly the overhead pattern
that made parallel mining lose wall-clock to serial, and ad-hoc
executors also dodge the pool registry's crash handling and
atexit/shared-memory cleanup.  The rule flags any such constructor call
in ``core/`` outside the sanctioned ``core/pool.py`` module — route the
work through :class:`repro.core.pool.WorkerPool` instead.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import ModuleContext, Rule, call_name
from repro.analysis.findings import Finding

#: Receivers whose .insert() mutates event-loop-shared state.
_SHARED_RECEIVERS = {"index", "miner"}
_EPOCH_ATTRS = {"epoch", "_epoch"}


class UnserialisedIndexMutation(Rule):
    id = "RPR004"
    name = "unserialised-index-mutation"
    severity = "error"
    rationale = (
        "shared-index mutation off the event loop races the lock-free "
        "count/append handlers"
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.rel_path.endswith(
            ("service/handlers.py", "service/scrubber.py")
        )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                yield from self._check_insert(ctx, node)
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                yield from self._check_epoch_write(ctx, node)

    def _check_insert(
        self, ctx: ModuleContext, call: ast.Call
    ) -> Iterator[Finding]:
        func = call.func
        if not (isinstance(func, ast.Attribute) and func.attr == "insert"):
            return
        receiver = func.value
        if isinstance(receiver, ast.Attribute):
            name = receiver.attr
        elif isinstance(receiver, ast.Name):
            name = receiver.id
        else:
            return
        if name not in _SHARED_RECEIVERS:
            return
        if ctx.in_async_function(call):
            return  # on the loop: serialised by construction
        yield self.finding(
            ctx,
            call,
            f"{name}.insert() outside an async (event-loop) scope; shared "
            f"index mutation must serialise through the loop — if this "
            f"helper is only called from a coroutine, baseline it with "
            f"that call path as justification",
        )

    def _check_epoch_write(
        self, ctx: ModuleContext, stmt: ast.Assign | ast.AugAssign
    ) -> Iterator[Finding]:
        targets = (
            stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
        )
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and target.attr in _EPOCH_ATTRS
            ):
                yield self.finding(
                    ctx,
                    stmt,
                    f"direct write to .{target.attr} bypasses the index's "
                    f"serialised insert path; the epoch is the cache "
                    f"freshness token and must advance with the mutation "
                    f"it describes",
                )


class NondeterministicPartitioning(Rule):
    id = "RPR005"
    name = "nondeterministic-partitioning"
    severity = "error"
    rationale = (
        "set iteration order varies across processes; partitioning from "
        "it breaks the workers=N determinism promise"
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.rel_path.endswith("parallel.py")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            iters: list[ast.AST] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)
            ):
                iters.extend(gen.iter for gen in node.generators)
            for target in iters:
                if self._is_set_expr(target):
                    yield self.finding(
                        ctx,
                        target,
                        "iteration over a set feeds worker partitioning; "
                        "set order is nondeterministic across processes — "
                        "wrap the iterable in sorted(...)",
                    )

    @staticmethod
    def _is_set_expr(expr: ast.AST) -> bool:
        if isinstance(expr, (ast.Set, ast.SetComp)):
            return True
        return isinstance(expr, ast.Call) and call_name(expr) in (
            "set",
            "frozenset",
        )


#: Constructors that spawn worker processes; only core/pool.py may call
#: them inside core/.
_POOL_SPAWNERS = {"ProcessPoolExecutor", "Pool"}


class UnsanctionedPoolSpawn(Rule):
    id = "RPR009"
    name = "unsanctioned-pool-spawn"
    severity = "error"
    rationale = (
        "per-call executor spawns repay the pool-startup tax that made "
        "parallel mining lose wall-clock, and bypass WorkerPool's crash "
        "handling and shared-memory cleanup"
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        path = ctx.rel_path
        return "core/" in path and not path.endswith("core/pool.py")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and call_name(node) in _POOL_SPAWNERS
            ):
                yield self.finding(
                    ctx,
                    node,
                    f"{call_name(node)}(...) spawned outside core/pool.py; "
                    f"core code must reuse repro.core.pool.WorkerPool so "
                    f"pools persist across calls and crashes tear down "
                    f"shared memory",
                )
