"""RPR012 — await-interleaving race on shared index/epoch/ShardMap state.

The serving layer's concurrency model is cooperative: shared state
(``self.index``, the cache epoch, the ShardMap and its per-shard link
state) is only touched from the event loop, so *synchronous* stretches
of a coroutine are atomic.  Every ``await`` ends such a stretch — any
other task may run, including one executing the same handler.  A
coroutine that **reads** shared state, **awaits**, and then **mutates**
shared state has therefore acted on a stale check: the classic
check-then-act race, merely spelled with ``await`` instead of threads.

The rule is flow- and call-graph-sensitive:

* The read and the mutation must be connected by a CFG path that
  crosses an await node — reads after the last await, or mutations
  that the await cannot precede, do not fire.
* A mutation hidden inside a helper counts at its call site when the
  call graph can resolve the call (``self._promote_tail(...)`` three
  frames above the actual ``map.promote_follower``).
* A **post-await re-check dominating the mutation** exonerates it: an
  ``if``/``while`` test that re-reads shared state after the await and
  controls the mutation is exactly the sanctioned pattern
  (``_op_count`` re-checks ``self.index.epoch`` before caching; the
  promote path re-checks ``state.follower`` before touching the map).

Precision limits: reads must be lexical in the coroutine (helper reads
do not count — a helper that both reads and mutates in one synchronous
call is atomic), and any dominating shared-state test counts as the
re-check even if it tests a different attribute than was read.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import FlowRule, ModuleContext, dotted_name
from repro.analysis.findings import Finding
from repro.analysis.flow.callgraph import FunctionInfo
from repro.analysis.flow.cfg import CFG, iter_stmt_nodes
from repro.analysis.flow.program import ProgramContext

#: Attribute names whose loads count as reading loop-shared state.
_SHARED_ATTRS = {
    "index",
    "miner",
    "database",
    "map",
    "shards",
    "epoch",
    "_epoch",
    "entry",
    "follower",
}

#: Method names that mutate shared state regardless of receiver.
_MUTATING_METHODS = {
    "promote_follower",
    "replace_entry",
    "adopt_promotion",
    "quarantine_index",
}

#: ``.insert()`` receivers that are shared (mirrors RPR004).
_INSERT_RECEIVERS = {"index", "miner"}

#: Attribute assignment targets that are shared state.
_MUTATED_ATTRS = {"epoch", "_epoch", "entry", "follower"}


def _receiver_parts(call: ast.Call) -> set[str]:
    func = call.func
    if not isinstance(func, ast.Attribute):
        return set()
    return set(dotted_name(func.value).split("."))


def _is_direct_mutation(node: ast.AST) -> bool:
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        attr = node.func.attr
        if attr in _MUTATING_METHODS:
            return True
        if attr == "insert" and _receiver_parts(node) & _INSERT_RECEIVERS:
            return True
        if attr == "append" and "database" in _receiver_parts(node):
            return True
    if isinstance(node, (ast.Assign, ast.AugAssign)):
        targets = (
            node.targets if isinstance(node, ast.Assign) else [node.target]
        )
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and target.attr in _MUTATED_ATTRS
            ):
                return True
    return False


def _stmt_has_direct_mutation(stmt: ast.AST) -> bool:
    return any(_is_direct_mutation(node) for node in iter_stmt_nodes(stmt))


def _stmt_shared_reads(stmt: ast.AST) -> list[ast.Attribute]:
    """Shared-attribute loads in the statement's own expressions."""
    return [
        node
        for node in iter_stmt_nodes(stmt)
        if isinstance(node, ast.Attribute)
        and isinstance(node.ctx, ast.Load)
        and node.attr in _SHARED_ATTRS
    ]


def _function_mutates(info: FunctionInfo) -> bool:
    return any(
        _is_direct_mutation(node)
        for node in info.ctx.body_nodes(info.node)
    )


class AwaitInterleavingRace(FlowRule):
    id = "RPR012"
    name = "await-interleaving-race"
    severity = "error"
    rationale = (
        "a coroutine that reads shared index/map state, awaits, then "
        "mutates it acts on a stale check; another loop task ran in "
        "between"
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return "service/" in ctx.rel_path

    def check_flow(
        self, program: ProgramContext, ctx: ModuleContext
    ) -> Iterator[Finding]:
        mutating_fids = program.cache(
            "rpr012.mutating",
            lambda: program.callgraph.transitive(_function_mutates),
        )
        for func in ctx.functions():
            if not isinstance(func, ast.AsyncFunctionDef):
                continue
            yield from self._check_function(program, ctx, func, mutating_fids)

    def _check_function(
        self,
        program: ProgramContext,
        ctx: ModuleContext,
        func: ast.AsyncFunctionDef,
        mutating_fids: set[str],
    ) -> Iterator[Finding]:
        cfg = program.cfg(func)
        awaits = cfg.await_nodes()
        if not awaits:
            return

        info = program.function_info(ctx, func)
        reads: list[int] = []
        mutations: list[tuple[int, ast.AST, str]] = []
        guards: list[int] = []
        for node in cfg.stmt_nodes():
            stmt = node.stmt
            if stmt is None:
                continue
            if _stmt_has_direct_mutation(stmt):
                mutations.append((node.idx, stmt, "mutates shared state"))
            elif info is not None:
                for call in iter_stmt_nodes(stmt):
                    if not isinstance(call, ast.Call):
                        continue
                    callee = program.callgraph.resolve_call(ctx, func, call)
                    if callee is not None and callee in mutating_fids:
                        helper = callee.rsplit("::", 1)[-1]
                        mutations.append(
                            (node.idx, stmt, f"mutates shared state via {helper}()")
                        )
                        break
            if _stmt_shared_reads(stmt):
                reads.append(node.idx)
                if isinstance(stmt, (ast.If, ast.While)) and _stmt_shared_reads(
                    stmt
                ):
                    guards.append(node.idx)
        if not reads or not mutations:
            return

        # Await nodes a shared read can flow into.
        tainted_awaits = [
            a for a in awaits if any(cfg.reaches(r, a) for r in reads)
        ]
        if not tainted_awaits:
            return
        after_awaits = cfg.reachable_from(awaits)
        doms = None
        for idx, stmt, how in mutations:
            if not any(cfg.reaches(a, idx) for a in tainted_awaits):
                continue
            if doms is None:
                doms = program.dominators(func)
            exonerated = any(
                g in doms.get(idx, ()) and g in after_awaits and g != idx
                for g in guards
            )
            if exonerated:
                continue
            yield self.finding(
                ctx,
                stmt,
                f"this statement {how} after an await that follows a "
                f"shared-state read: the check-then-act is split by a "
                f"suspension point where another task can run — re-check "
                f"the shared state after the await (a dominating "
                f"if/while re-check exonerates this site)",
            )
