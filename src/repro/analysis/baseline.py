"""Accepted-findings baseline: documented false positives, nothing else.

A baseline entry matches findings by ``(rule, path, symbol)`` — not by
line number — so entries survive unrelated edits to the same file.
Every entry must carry a non-empty ``justification``: the baseline is a
reviewed list of *documented* false positives, not a mute button.

Entries that no longer match anything are reported as *stale* so the
file shrinks as code is fixed; ``python -m repro.tools.lint
--write-baseline`` regenerates the file from the current findings
(justifications of surviving entries are preserved).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.findings import Finding

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = "analysis_baseline.json"


class BaselineError(ValueError):
    """The baseline file is malformed (bad JSON, missing fields)."""


@dataclass(frozen=True)
class BaselineEntry:
    """One accepted finding site."""

    rule: str
    path: str
    symbol: str
    justification: str

    def matches(self, finding: Finding) -> bool:
        return (
            self.rule == finding.rule
            and self.path == finding.path
            and self.symbol == finding.symbol
        )


@dataclass
class BaselineResult:
    """The split a baseline application produces."""

    new: list[Finding] = field(default_factory=list)
    accepted: list[Finding] = field(default_factory=list)
    stale: list[BaselineEntry] = field(default_factory=list)


class Baseline:
    """A loaded set of accepted findings."""

    def __init__(self, entries: list[BaselineEntry]) -> None:
        self.entries = entries

    @classmethod
    def empty(cls) -> "Baseline":
        return cls([])

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        try:
            payload = json.loads(Path(path).read_text(encoding="utf-8"))
        except OSError as exc:
            raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
        except json.JSONDecodeError as exc:
            raise BaselineError(
                f"baseline {path} is not valid JSON: {exc}"
            ) from exc
        if not isinstance(payload, dict) or "entries" not in payload:
            raise BaselineError(
                f"baseline {path} must be an object with an 'entries' list"
            )
        entries = []
        for position, raw in enumerate(payload["entries"]):
            if not isinstance(raw, dict):
                raise BaselineError(
                    f"baseline {path} entry {position} is not an object"
                )
            missing = {"rule", "path", "symbol", "justification"} - set(raw)
            if missing:
                raise BaselineError(
                    f"baseline {path} entry {position} is missing "
                    f"{sorted(missing)}"
                )
            if not str(raw["justification"]).strip():
                raise BaselineError(
                    f"baseline {path} entry {position} "
                    f"({raw['rule']} at {raw['path']}) has an empty "
                    f"justification — document why it is a false positive"
                )
            entries.append(
                BaselineEntry(
                    rule=str(raw["rule"]),
                    path=str(raw["path"]),
                    symbol=str(raw["symbol"]),
                    justification=str(raw["justification"]),
                )
            )
        return cls(entries)

    def apply(self, findings: list[Finding]) -> BaselineResult:
        """Split findings into new vs accepted; collect stale entries."""
        result = BaselineResult()
        used: set[BaselineEntry] = set()
        for finding in findings:
            entry = next(
                (e for e in self.entries if e.matches(finding)), None
            )
            if entry is None:
                result.new.append(finding)
            else:
                used.add(entry)
                result.accepted.append(finding)
        result.stale = [e for e in self.entries if e not in used]
        return result

    def regenerate(self, findings: list[Finding]) -> dict:
        """A fresh baseline document accepting exactly ``findings``.

        Existing justifications are kept for sites still firing; new
        sites get a TODO placeholder that must be filled in (the loader
        rejects empty justifications, and a TODO is visible in review).
        """
        seen: set[tuple[str, str, str]] = set()
        entries = []
        for finding in findings:
            key = (finding.rule, finding.path, finding.symbol)
            if key in seen:
                continue
            seen.add(key)
            existing = next(
                (e for e in self.entries if e.matches(finding)), None
            )
            entries.append(
                {
                    "rule": finding.rule,
                    "path": finding.path,
                    "symbol": finding.symbol,
                    "justification": (
                        existing.justification
                        if existing is not None
                        else "TODO: document why this is a false positive"
                    ),
                }
            )
        return {"version": BASELINE_VERSION, "entries": entries}
