"""Worklist dataflow over :class:`~repro.analysis.flow.cfg.CFG`.

Two fact families the flow rules consume:

* **Reaching definitions** — which binding of a name can be live at a
  node.  RPR014 uses this to make sure a ``shm.close()`` it credits as
  a release really operates on the acquisition's binding and not a
  later rebind of the same name.
* **Dominators** (path-condition facts) — the nodes every path from
  entry must cross.  RPR012 credits a post-await re-check only when it
  dominates the mutation; RPR015 requires a deadline guard dominating
  the dial.

Both are instances of :func:`solve_forward`, a standard iterate-to-
fixpoint worklist: facts per node, transfer per node, meet over
predecessors.  CFGs here are per-function and small (tens of nodes), so
no ordering cleverness is needed.
"""

from __future__ import annotations

import ast
from collections import deque
from typing import Callable, FrozenSet, Tuple

from repro.analysis.flow.cfg import CFG

#: One definition fact: ``(name, defining node index)``.
Definition = Tuple[str, int]
Facts = FrozenSet[Definition]


def solve_forward(
    cfg: CFG,
    *,
    init: Facts,
    transfer: Callable[[int, Facts], Facts],
    meet: Callable[[Facts, Facts], Facts],
) -> tuple[dict[int, Facts], dict[int, Facts]]:
    """Forward fixpoint: returns ``(facts_in, facts_out)`` per node.

    ``init`` seeds the entry node; every other node starts from the meet
    identity implied by the first predecessor fact that arrives (the
    worklist only meets facts from *visited* predecessors, which is the
    standard optimistic initialisation and converges for monotone
    transfers over finite lattices).
    """
    facts_in: dict[int, Facts] = {cfg.entry: init}
    facts_out: dict[int, Facts] = {}
    work: deque[int] = deque([cfg.entry])
    while work:
        idx = work.popleft()
        merged: Facts | None = init if idx == cfg.entry else None
        for pred, _kind in cfg.predecessors(idx):
            pred_out = facts_out.get(pred)
            if pred_out is None:
                continue
            merged = pred_out if merged is None else meet(merged, pred_out)
        if merged is None:
            merged = init
        facts_in[idx] = merged
        out = transfer(idx, merged)
        if facts_out.get(idx) == out and idx in facts_out:
            continue
        facts_out[idx] = out
        for succ, _kind in cfg.successors(idx):
            if succ not in work:
                work.append(succ)
    return facts_in, facts_out


def assigned_names(stmt: ast.AST) -> set[str]:
    """Simple names ``stmt`` binds: assignment targets, loop targets,
    ``with ... as``, ``except ... as``, walrus expressions."""
    names: set[str] = set()

    def target_names(target: ast.AST) -> None:
        if isinstance(target, ast.Name):
            names.add(target.id)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                target_names(elt)
        elif isinstance(target, ast.Starred):
            target_names(target.value)

    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            target_names(target)
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        target_names(stmt.target)
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        target_names(stmt.target)
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.optional_vars is not None:
                target_names(item.optional_vars)
    elif isinstance(stmt, ast.ExceptHandler) and stmt.name:
        names.add(stmt.name)
    for node in ast.walk(stmt):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if isinstance(node, ast.NamedExpr) and isinstance(
            node.target, ast.Name
        ):
            names.add(node.target.id)
    return names


def reaching_definitions(cfg: CFG) -> dict[int, Facts]:
    """``facts_in`` per node: the ``(name, def node)`` pairs that may be
    the live binding of ``name`` when the node executes."""
    gen: dict[int, Facts] = {}
    killed_names: dict[int, set[str]] = {}
    for node in cfg.nodes:
        if node.kind in ("stmt", "except") and node.stmt is not None:
            names = assigned_names(node.stmt)
            if names:
                gen[node.idx] = frozenset((name, node.idx) for name in names)
                killed_names[node.idx] = names

    def transfer(idx: int, facts: Facts) -> Facts:
        kills = killed_names.get(idx)
        if not kills:
            return facts
        survivors = frozenset(
            fact for fact in facts if fact[0] not in kills
        )
        return survivors | gen[idx]

    def union(a: Facts, b: Facts) -> Facts:
        return a | b

    facts_in, _ = solve_forward(
        cfg, init=frozenset(), transfer=transfer, meet=union
    )
    return facts_in


def dominators(cfg: CFG) -> dict[int, set[int]]:
    """``{node: set of dominators}`` over all edges (flow *and*
    exception): a dominator lies on every path from entry, whichever way
    exceptions go.  Unreachable nodes map to the empty set."""
    all_nodes = set(range(len(cfg.nodes)))
    dom: dict[int, set[int]] = {idx: set(all_nodes) for idx in all_nodes}
    dom[cfg.entry] = {cfg.entry}
    changed = True
    while changed:
        changed = False
        for idx in all_nodes:
            if idx == cfg.entry:
                continue
            preds = [pred for pred, _kind in cfg.predecessors(idx)]
            if not preds:
                if dom[idx]:
                    dom[idx] = set()
                    changed = True
                continue
            merged: set[int] | None = None
            for pred in preds:
                pred_dom = dom[pred]
                if pred_dom == all_nodes and pred != cfg.entry:
                    continue  # not yet computed / unreachable-so-far
                merged = (
                    set(pred_dom)
                    if merged is None
                    else merged & pred_dom
                )
            if merged is None:
                continue
            merged.add(idx)
            if merged != dom[idx]:
                dom[idx] = merged
                changed = True
    # Nodes never tightened below "everything" are unreachable.
    for idx in all_nodes:
        if idx != cfg.entry and dom[idx] == all_nodes:
            dom[idx] = set()
    return dom
