"""Flow-sensitive analysis: CFGs, call graph, dataflow solver.

The per-module AST rules (RPR001-011) are syntactic: they match shapes.
The flow layer adds the machinery to reason about *orderings* — whether
an ACK is reachable before its fsync barrier, whether a check-then-act
is split by an await, whether a deadline guard dominates a dial — by
building per-function control-flow graphs with explicit await-point and
exception-edge nodes (:mod:`~repro.analysis.flow.cfg`), an
import-resolving intra-repo call graph
(:mod:`~repro.analysis.flow.callgraph`), and a worklist dataflow solver
(:mod:`~repro.analysis.flow.dataflow`).  :class:`ProgramContext`
(:mod:`~repro.analysis.flow.program`) ties them together and caches the
artefacts for one whole-tree scan.
"""

from __future__ import annotations

from repro.analysis.flow.cfg import CFG, CFGNode, build_cfg
from repro.analysis.flow.callgraph import CallGraph
from repro.analysis.flow.dataflow import (
    dominators,
    reaching_definitions,
    solve_forward,
)
from repro.analysis.flow.program import ProgramContext

__all__ = [
    "CFG",
    "CFGNode",
    "CallGraph",
    "ProgramContext",
    "build_cfg",
    "dominators",
    "reaching_definitions",
    "solve_forward",
]
