"""Per-function control-flow graphs with await and exception edges.

One :func:`build_cfg` call turns a ``def`` / ``async def`` AST node into
a statement-level CFG.  Two node kinds beyond plain statements matter to
the flow rules:

* ``await`` nodes — inserted *before* any statement whose evaluation
  suspends (an ``ast.Await`` in its own expressions, or the implicit
  suspension of ``async for`` / ``async with`` headers).  A path that
  crosses an await node crosses a point where other event-loop tasks
  run — the interleaving hazard RPR012 looks for.
* exception edges (kind ``"exc"``) — from every statement that may
  raise (calls, awaits, ``raise``, ``assert``) to the enclosing
  handler chain, or to the dedicated ``raise`` exit when nothing
  catches.  "Reachable on any path *including exception edges*" is the
  obligation RPR013/RPR014 check.

The graph is deliberately conservative where precision is cheap to lose:
context managers are assumed not to swallow exceptions, ``finally``
blocks are entered from both normal and exceptional flow and re-raise
outward, and a ``match`` with no wildcard keeps its fall-through edge.

Reachability queries treat *blocked* nodes with edge semantics: a path
may still leave a blocked node along an exception edge (the barrier /
release call that raises did **not** take effect) but never along a
normal flow edge.
"""

from __future__ import annotations

import ast
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

#: Edge kinds.
FLOW = "flow"
EXC = "exc"

#: Statement parts that belong to the *header* of a compound statement
#: (the part the statement's own CFG node models; bodies get their own
#: nodes).
_HEADER_FIELDS: dict[type, tuple[str, ...]] = {
    ast.If: ("test",),
    ast.While: ("test",),
    ast.For: ("target", "iter"),
    ast.AsyncFor: ("target", "iter"),
    ast.With: ("items",),
    ast.AsyncWith: ("items",),
    ast.Try: (),
    ast.Match: ("subject",),
    # A nested def/class statement only evaluates its decorators (and
    # defaults) when executed; the body belongs to another function.
    ast.FunctionDef: ("decorator_list",),
    ast.AsyncFunctionDef: ("decorator_list",),
    ast.ClassDef: ("decorator_list", "bases", "keywords"),
    # An except clause's own node models the match test; its body
    # statements carry their own CFG nodes.
    ast.ExceptHandler: ("type",),
}


@dataclass
class CFGNode:
    """One vertex: a statement, an await point, or a synthetic marker."""

    idx: int
    kind: str  # "entry" | "exit" | "raise" | "stmt" | "await" | "except" | "finally"
    stmt: ast.AST | None = None
    awaits: tuple[ast.expr, ...] = ()

    @property
    def lineno(self) -> int:
        return getattr(self.stmt, "lineno", 0)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        where = f" line {self.lineno}" if self.stmt is not None else ""
        return f"<CFGNode {self.idx} {self.kind}{where}>"


class CFG:
    """A statement-level control-flow graph for one function."""

    def __init__(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self.func = func
        self.nodes: list[CFGNode] = []
        self._succ: list[list[tuple[int, str]]] = []
        self._pred: list[list[tuple[int, str]]] = []
        self.entry = self._add("entry")
        self.exit = self._add("exit")
        #: Exceptional exit: an uncaught exception leaves through here,
        #: distinct from ``exit`` so rules can tell a return path from a
        #: propagating-raise path.
        self.raise_exit = self._add("raise")
        self._by_stmt: dict[int, int] = {}

    # -- construction --------------------------------------------------------

    def _add(
        self,
        kind: str,
        stmt: ast.AST | None = None,
        awaits: tuple[ast.expr, ...] = (),
    ) -> int:
        node = CFGNode(len(self.nodes), kind, stmt, awaits)
        self.nodes.append(node)
        self._succ.append([])
        self._pred.append([])
        if stmt is not None and kind in ("stmt", "except"):
            self._by_stmt.setdefault(id(stmt), node.idx)
        return node.idx

    def _edge(self, src: int, dst: int, kind: str = FLOW) -> None:
        if (dst, kind) not in self._succ[src]:
            self._succ[src].append((dst, kind))
            self._pred[dst].append((src, kind))

    # -- queries -------------------------------------------------------------

    def successors(self, idx: int) -> list[tuple[int, str]]:
        return list(self._succ[idx])

    def predecessors(self, idx: int) -> list[tuple[int, str]]:
        return list(self._pred[idx])

    def node_of(self, stmt: ast.AST) -> int | None:
        """The node index modelling ``stmt``'s execution, if any."""
        return self._by_stmt.get(id(stmt))

    def await_nodes(self) -> list[int]:
        return [n.idx for n in self.nodes if n.kind == "await"]

    def stmt_nodes(self) -> Iterator[CFGNode]:
        for node in self.nodes:
            if node.kind in ("stmt", "except"):
                yield node

    def exit_nodes(self) -> tuple[int, int]:
        return (self.exit, self.raise_exit)

    def reachable_from(
        self,
        starts: Iterable[int],
        *,
        blocked: Callable[[int], bool] | None = None,
        enter_starts: bool = True,
        exc_escapes_blocked: bool = True,
    ) -> set[int]:
        """Nodes reachable from ``starts`` (exclusive of the starts
        themselves unless re-entered through a cycle).

        ``blocked`` marks nodes whose *successful completion* stops the
        path.  With ``exc_escapes_blocked`` true (the default), their
        exception successors are still expanded — a barrier that raises
        did not act as a barrier.  With it false, merely *reaching* the
        blocked node satisfies it — the semantics for a best-effort
        release, which counts even if the close itself blows up.  When
        ``enter_starts`` is false the start nodes' own blocked-ness is
        ignored (useful when the start *is* e.g. the acquisition
        statement itself).
        """

        def expand(idx: int, honour_block: bool) -> Iterator[tuple[int, str]]:
            is_blocked = (
                honour_block and blocked is not None and blocked(idx)
            )
            for dst, kind in self._succ[idx]:
                if is_blocked and (kind != EXC or not exc_escapes_blocked):
                    continue
                yield dst, kind

        seen: set[int] = set()
        queue: deque[int] = deque()
        for start in starts:
            for dst, _kind in expand(start, enter_starts):
                if dst not in seen:
                    seen.add(dst)
                    queue.append(dst)
        while queue:
            current = queue.popleft()
            for dst, _kind in expand(current, True):
                if dst not in seen:
                    seen.add(dst)
                    queue.append(dst)
        return seen

    def reaches(
        self,
        src: int,
        dst: int,
        *,
        blocked: Callable[[int], bool] | None = None,
        exc_escapes_blocked: bool = True,
    ) -> bool:
        """Whether a path ``src -> dst`` exists that never *completes* a
        blocked node (see :meth:`reachable_from` for edge semantics)."""
        return dst in self.reachable_from(
            [src],
            blocked=blocked,
            enter_starts=False,
            exc_escapes_blocked=exc_escapes_blocked,
        )


def _catches_all(handler: ast.ExceptHandler) -> bool:
    """Whether the clause matches every exception (``except:`` or
    ``except BaseException:``, alone or inside a tuple)."""
    if handler.type is None:
        return True
    clauses = (
        handler.type.elts
        if isinstance(handler.type, ast.Tuple)
        else [handler.type]
    )
    return any(
        isinstance(c, ast.Name) and c.id == "BaseException" for c in clauses
    )


@dataclass
class _LoopFrame:
    header: int
    breaks: list[int] = field(default_factory=list)


class _Builder:
    """Frontier-based CFG construction.

    The frontier is the set of node indices whose outgoing flow edge is
    still dangling; each statement consumes the frontier and produces
    the next one.  ``exc_targets`` is a stack of handler-node lists —
    the innermost enclosing ``except`` chain (plus ``finally`` entry),
    falling back to the raise exit.
    """

    def __init__(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        self.cfg = CFG(func)
        self.exc_targets: list[list[int]] = [[self.cfg.raise_exit]]
        self.loops: list[_LoopFrame] = []
        #: Pending ``finally`` blocks enclosing the statement being
        #: built, innermost last, as ``(entry, out_frontier)`` pairs —
        #: a ``return`` must run them before leaving the function.
        self.finallies: list[tuple[int, list[int]]] = []

    def build(self) -> CFG:
        frontier = self._body(self.cfg.func.body, [self.cfg.entry])
        for idx in frontier:
            self.cfg._edge(idx, self.cfg.exit)
        return self.cfg

    # -- plumbing ------------------------------------------------------------

    def _link(self, frontier: Iterable[int], dst: int) -> None:
        for idx in frontier:
            self.cfg._edge(idx, dst)

    def _add_exc_edges(self, idx: int) -> None:
        for target in self.exc_targets[-1]:
            self.cfg._edge(idx, target, EXC)

    def _enter(
        self, stmt: ast.stmt, frontier: list[int], *, force_await: bool = False
    ) -> int:
        """Create the await (if any) and statement nodes for ``stmt``'s
        own evaluation; returns the statement node's index."""
        awaits = _own_awaits(stmt)
        if awaits or force_await:
            await_idx = self.cfg._add("await", stmt, tuple(awaits))
            self._link(frontier, await_idx)
            self._add_exc_edges(await_idx)
            frontier = [await_idx]
        stmt_idx = self.cfg._add("stmt", stmt)
        self._link(frontier, stmt_idx)
        if _may_raise(stmt):
            self._add_exc_edges(stmt_idx)
        return stmt_idx

    def _return_edges(self, idx: int) -> None:
        """Wire a ``return`` to the exit, running pending ``finally``
        blocks innermost-first.

        The finally chain is an over-approximation: the edges added from
        each finally's out-frontier (to the next-outer finally, then to
        the exit) merge the return path with the normal continuation.
        That only ever *adds* paths — the safe side for reachability
        rules — and keeps ``try: ... return r finally: release()`` paths
        crossing the release, which is what lifecycle analysis needs.
        """
        if not self.finallies:
            self.cfg._edge(idx, self.cfg.exit)
            return
        entries = [entry for entry, _ in self.finallies]
        outs = [out for _, out in self.finallies]
        self.cfg._edge(idx, entries[-1])
        for inner in range(len(self.finallies) - 1, 0, -1):
            for out_idx in outs[inner]:
                self.cfg._edge(out_idx, entries[inner - 1])
        for out_idx in outs[0]:
            self.cfg._edge(out_idx, self.cfg.exit)

    def _body(self, stmts: list[ast.stmt], frontier: list[int]) -> list[int]:
        for stmt in stmts:
            if not frontier:
                break  # unreachable code after return/raise/break
            frontier = self._stmt(stmt, frontier)
        return frontier

    # -- statement dispatch --------------------------------------------------

    def _stmt(self, stmt: ast.stmt, frontier: list[int]) -> list[int]:
        if isinstance(stmt, ast.Return):
            idx = self._enter(stmt, frontier)
            self._return_edges(idx)
            return []
        if isinstance(stmt, ast.Raise):
            idx = self._enter(stmt, frontier)
            self._add_exc_edges(idx)
            return []
        if isinstance(stmt, ast.Break):
            idx = self._enter(stmt, frontier)
            if self.loops:
                self.loops[-1].breaks.append(idx)
            return []
        if isinstance(stmt, ast.Continue):
            idx = self._enter(stmt, frontier)
            if self.loops:
                self.cfg._edge(idx, self.loops[-1].header)
            return []
        if isinstance(stmt, ast.If):
            return self._if(stmt, frontier)
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(stmt, frontier)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            idx = self._enter(
                stmt, frontier, force_await=isinstance(stmt, ast.AsyncWith)
            )
            return self._body(stmt.body, [idx])
        if isinstance(stmt, ast.Try):
            return self._try(stmt, frontier)
        if isinstance(stmt, ast.Match):
            return self._match(stmt, frontier)
        # Simple statements — including nested def/class, whose bodies
        # are separate functions with their own CFGs.
        return [self._enter(stmt, frontier)]

    def _if(self, stmt: ast.If, frontier: list[int]) -> list[int]:
        idx = self._enter(stmt, frontier)
        out = self._body(stmt.body, [idx])
        if stmt.orelse:
            out += self._body(stmt.orelse, [idx])
        else:
            out += [idx]
        return out

    def _loop(
        self, stmt: ast.While | ast.For | ast.AsyncFor, frontier: list[int]
    ) -> list[int]:
        header = self._enter(
            stmt, frontier, force_await=isinstance(stmt, ast.AsyncFor)
        )
        frame = _LoopFrame(header)
        self.loops.append(frame)
        body_out = self._body(stmt.body, [header])
        self.loops.pop()
        self._link(body_out, header)
        out = list(frame.breaks)
        infinite = (
            isinstance(stmt, ast.While)
            and isinstance(stmt.test, ast.Constant)
            and bool(stmt.test.value)
        )
        if not infinite:
            if stmt.orelse:
                out += self._body(stmt.orelse, [header])
            else:
                out += [header]
        return out

    def _try(self, stmt: ast.Try, frontier: list[int]) -> list[int]:
        handler_nodes: list[int] = []
        for handler in stmt.handlers:
            handler_nodes.append(self.cfg._add("except", handler))

        finally_entry: int | None = None
        finally_out: list[int] = []
        if stmt.finalbody:
            finally_entry = self.cfg._add("finally", stmt)
            finally_out = self._body(stmt.finalbody, [finally_entry])
            # A pending exception re-raises after the finally *body*
            # ran — the edge leaves from its out-frontier, so paths
            # carrying the exception still cross every finally
            # statement.  (An empty out-frontier means the finally
            # itself returned/raised, which swallows the pending one.)
            for out_idx in finally_out:
                for target in self.exc_targets[-1]:
                    self.cfg._edge(out_idx, target, EXC)

        outer = self.exc_targets[-1]
        body_targets = list(handler_nodes)
        # An exception no handler matches still runs the finally (or
        # propagates straight out when there is none) — unless a
        # catch-all handler (bare ``except:`` / ``except BaseException``)
        # makes that escape impossible.
        if not any(_catches_all(h) for h in stmt.handlers):
            body_targets += (
                [finally_entry] if finally_entry is not None else outer
            )

        if finally_entry is not None:
            self.finallies.append((finally_entry, finally_out))
        self.exc_targets.append(body_targets)
        body_out = self._body(stmt.body, frontier)
        if stmt.orelse:
            body_out = self._body(stmt.orelse, body_out)
        self.exc_targets.pop()

        handler_targets = [finally_entry] if finally_entry is not None else outer
        self.exc_targets.append(list(handler_targets))
        normal_out = list(body_out)
        for handler, node_idx in zip(stmt.handlers, handler_nodes):
            normal_out += self._body(handler.body, [node_idx])
        self.exc_targets.pop()
        if finally_entry is not None:
            self.finallies.pop()

        if finally_entry is not None:
            self._link(normal_out, finally_entry)
            return list(finally_out)
        return normal_out

    def _match(self, stmt: ast.Match, frontier: list[int]) -> list[int]:
        idx = self._enter(stmt, frontier)
        out: list[int] = []
        for case in stmt.cases:
            out += self._body(case.body, [idx])
        # No-case-matched fall-through (kept even with a wildcard: the
        # imprecision only ever *adds* paths, which is the safe side for
        # "is X reachable" rules).
        out += [idx]
        return out


def iter_stmt_nodes(stmt: ast.AST) -> Iterator[ast.AST]:
    """AST nodes a statement's *own* execution evaluates: the whole
    subtree for simple statements, header expressions only for compound
    ones (whose bodies get their own CFG nodes), and never the inside of
    nested function/lambda bodies.  This is the walk flow rules use to
    classify CFG nodes, matching how the builder collects awaits."""
    fields = _HEADER_FIELDS.get(type(stmt))
    if fields is None:
        roots: list[ast.AST] = [stmt]
    else:
        roots = []
        for name in fields:
            value = getattr(stmt, name)
            roots.extend(value if isinstance(value, list) else [value])
    stack = list(roots)
    while stack:
        node = stack.pop()
        if node is not stmt and isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
        ):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _own_awaits(stmt: ast.stmt) -> list[ast.expr]:
    """Await expressions evaluated by ``stmt``'s own header/expressions,
    not those inside nested function bodies or a compound's body."""
    return [
        node for node in iter_stmt_nodes(stmt) if isinstance(node, ast.Await)
    ]


def _may_raise(stmt: ast.stmt) -> bool:
    """Whether the statement's own evaluation can raise — calls, awaits,
    explicit raises and asserts.  Deliberately coarse: attribute and
    subscript errors are real but flagging them would wash every rule's
    path queries in noise."""
    if isinstance(stmt, (ast.Raise, ast.Assert)):
        return True
    return any(
        isinstance(node, (ast.Call, ast.Await))
        for node in iter_stmt_nodes(stmt)
    )


def build_cfg(func: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
    """Build the statement-level CFG for one function body."""
    return _Builder(func).build()
