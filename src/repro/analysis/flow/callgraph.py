"""An import-resolving call graph over the modules of one scan.

Resolution is intentionally *intra-repo and static*: a call edge exists
only when the callee can be pinned to a function defined in a scanned
module — a bare name defined at module level or imported via
``from m import f``, a ``self.``/``cls.`` method on the enclosing class,
or a ``mod.f`` attribute on an imported module.  Dynamic dispatch
(``self._OPS[op](...)``, callbacks, duck-typed receivers) resolves to
nothing, which keeps the graph an *under*-approximation: rules that
propagate a property along call edges ("this helper mutates the index")
may miss exotic call paths but never invent one.

Function ids are ``"<rel_path>::<dotted qualname>"``, matching the
``symbol`` field of findings so a rule can turn a graph node back into
a reportable location.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Callable, Iterable, Iterator

from repro.analysis.engine import dotted_name

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (types only)
    from repro.analysis.engine import ModuleContext


class FunctionInfo:
    """One function (or method) defined in a scanned module."""

    def __init__(
        self,
        fid: str,
        ctx: "ModuleContext",
        node: ast.FunctionDef | ast.AsyncFunctionDef,
        qualname: str,
    ):
        self.fid = fid
        self.ctx = ctx
        self.node = node
        self.qualname = qualname

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<FunctionInfo {self.fid}>"


def module_name_of(rel_path: str) -> str:
    """Dotted module name for a repo-relative path.

    ``src/repro/service/handlers.py`` -> ``repro.service.handlers``;
    package ``__init__.py`` files name the package itself.  Fixture
    paths without a ``src/`` prefix resolve the same way, so tests can
    exercise cross-module edges with short paths.
    """
    parts = rel_path.replace("\\", "/").split("/")
    if parts and parts[0] == "src":
        parts = parts[1:]
    if not parts:
        return ""
    last = parts[-1]
    if last.endswith(".py"):
        last = last[: -len(".py")]
    if last == "__init__":
        parts = parts[:-1]
    else:
        parts = parts[:-1] + [last]
    return ".".join(parts)


class CallGraph:
    """Call edges between functions defined in the scanned modules."""

    def __init__(self, modules: Iterable["ModuleContext"]) -> None:
        self.modules: dict[str, "ModuleContext"] = {
            ctx.rel_path: ctx for ctx in modules
        }
        #: dotted module name -> rel_path (first writer wins; duplicate
        #: short fixture names are a test-only concern).
        self._module_paths: dict[str, str] = {}
        for rel_path in self.modules:
            self._module_paths.setdefault(module_name_of(rel_path), rel_path)
        self.functions: dict[str, FunctionInfo] = {}
        #: per (rel_path, qualname) -> fid, for call resolution.
        self._by_qualname: dict[tuple[str, str], str] = {}
        #: per module: imported name -> (module name, attr or None).
        self._imports: dict[str, dict[str, tuple[str, str | None]]] = {}
        for ctx in self.modules.values():
            self._index_module(ctx)
        self._callees: dict[str, set[str]] = {}
        self._callers: dict[str, set[str]] = {}
        for info in self.functions.values():
            self._link_calls(info)

    # -- indexing ------------------------------------------------------------

    def _index_module(self, ctx: "ModuleContext") -> None:
        for func in ctx.functions():
            qualname = ctx.symbol_of(func)
            fid = f"{ctx.rel_path}::{qualname}"
            self.functions[fid] = FunctionInfo(fid, ctx, func, qualname)
            self._by_qualname.setdefault((ctx.rel_path, qualname), fid)
        table: dict[str, tuple[str, str | None]] = {}
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    bound = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    table[bound] = (target, None)
            elif isinstance(node, ast.ImportFrom):
                base = node.module or ""
                if node.level:
                    prefix_parts = module_name_of(ctx.rel_path).split(".")
                    # level=1 is the current package for a module file.
                    keep = len(prefix_parts) - node.level
                    prefix = ".".join(prefix_parts[:keep]) if keep > 0 else ""
                    base = f"{prefix}.{base}".strip(".") if base else prefix
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    bound = alias.asname or alias.name
                    table[bound] = (base, alias.name)
        self._imports[ctx.rel_path] = table

    # -- resolution ----------------------------------------------------------

    def _function_in_module(self, rel_path: str, qualname: str) -> str | None:
        return self._by_qualname.get((rel_path, qualname))

    def _resolve_imported(
        self, rel_path: str, name: str
    ) -> tuple[str, str] | None:
        """An imported ``name`` in ``rel_path`` -> ``(module rel_path,
        qualname)`` when it lands on a scanned module's function (or a
        whole scanned module, qualname ``""``)."""
        binding = self._imports.get(rel_path, {}).get(name)
        if binding is None:
            return None
        module, attr = binding
        if attr is None:
            target = self._module_paths.get(module)
            return (target, "") if target is not None else None
        target = self._module_paths.get(module)
        if target is not None:
            return (target, attr)
        # ``from a.b import c`` where c is itself a scanned module.
        submodule = self._module_paths.get(f"{module}.{attr}")
        if submodule is not None:
            return (submodule, "")
        return None

    def _enclosing_class(
        self, ctx: "ModuleContext", func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> ast.ClassDef | None:
        for ancestor in ctx.ancestors(func):
            if isinstance(ancestor, ast.ClassDef):
                return ancestor
            if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
                return None
        return None

    def resolve_call(
        self,
        ctx: "ModuleContext",
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        call: ast.Call,
    ) -> str | None:
        """The fid ``call`` lands on, when statically pinnable."""
        target = call.func
        if isinstance(target, ast.Name):
            local = self._function_in_module(ctx.rel_path, target.id)
            if local is not None:
                return local
            imported = self._resolve_imported(ctx.rel_path, target.id)
            if imported is not None and imported[1]:
                return self._function_in_module(imported[0], imported[1])
            return None
        if not isinstance(target, ast.Attribute):
            return None
        chain = dotted_name(target)
        if not chain or chain.startswith("()"):
            return None
        parts = chain.split(".")
        if parts[0] in ("self", "cls") and len(parts) == 2:
            cls = self._enclosing_class(ctx, func)
            if cls is not None:
                return self._function_in_module(
                    ctx.rel_path, f"{cls.name}.{parts[1]}"
                )
            return None
        # ``mod.f(...)`` where ``mod`` is an imported module (possibly
        # reached through more dotted components: ``import a`` followed
        # by ``a.b.f()``).
        imported = self._resolve_imported(ctx.rel_path, parts[0])
        if imported is None:
            return None
        rel_path, attr = imported
        if attr:
            # ``from m import f`` then ``f.x(...)``: an attribute on an
            # imported function — not statically pinnable.
            return None
        module = module_name_of(rel_path)
        consumed = 1
        while (
            len(parts) > consumed + 1
            and f"{module}.{parts[consumed]}" in self._module_paths
        ):
            module = f"{module}.{parts[consumed]}"
            rel_path = self._module_paths[module]
            consumed += 1
        qualname = ".".join(parts[consumed:])
        if not qualname:
            return None
        return self._function_in_module(rel_path, qualname)

    # -- edges ---------------------------------------------------------------

    def _link_calls(self, info: FunctionInfo) -> None:
        callees = self._callees.setdefault(info.fid, set())
        for node in info.ctx.body_nodes(info.node):
            if not isinstance(node, ast.Call):
                continue
            target = self.resolve_call(info.ctx, info.node, node)
            if target is None or target == info.fid:
                continue
            callees.add(target)
            self._callers.setdefault(target, set()).add(info.fid)

    def callees(self, fid: str) -> set[str]:
        return set(self._callees.get(fid, ()))

    def callers(self, fid: str) -> set[str]:
        return set(self._callers.get(fid, ()))

    def call_sites(
        self, info: FunctionInfo
    ) -> Iterator[tuple[ast.Call, str]]:
        """``(call node, callee fid)`` for every resolved call in
        ``info``'s own body."""
        for node in info.ctx.body_nodes(info.node):
            if isinstance(node, ast.Call):
                target = self.resolve_call(info.ctx, info.node, node)
                if target is not None:
                    yield node, target

    def function_of(
        self, ctx: "ModuleContext", func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> FunctionInfo | None:
        return self.functions.get(f"{ctx.rel_path}::{ctx.symbol_of(func)}")

    def transitive(
        self, direct: Callable[[FunctionInfo], bool]
    ) -> set[str]:
        """Fids with a property, closed over call edges: a function has
        it if ``direct`` says so, or if any (resolved) callee has it."""
        have: set[str] = {
            fid for fid, info in self.functions.items() if direct(info)
        }
        work = list(have)
        while work:
            fid = work.pop()
            for caller in self._callers.get(fid, ()):
                if caller not in have:
                    have.add(caller)
                    work.append(caller)
        return have
