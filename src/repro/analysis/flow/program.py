"""Whole-scan context for flow rules.

One :class:`ProgramContext` is built per lint invocation from every
module that parsed; flow rules receive it alongside the per-module
context.  CFGs and the call graph are built lazily and cached, so a
scan that selects only syntactic rules pays nothing for the flow layer,
and a flow rule visiting ten modules builds each function's CFG once.
"""

from __future__ import annotations

import ast
from typing import TYPE_CHECKING, Callable, Iterable, TypeVar

from repro.analysis.flow.callgraph import CallGraph, FunctionInfo
from repro.analysis.flow.cfg import CFG, build_cfg
from repro.analysis.flow.dataflow import dominators as _dominators

T = TypeVar("T")

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (types only)
    from repro.analysis.engine import ModuleContext


class ProgramContext:
    """Every parsed module of one scan plus cached flow artefacts."""

    def __init__(self, contexts: Iterable["ModuleContext"]) -> None:
        self.modules: dict[str, "ModuleContext"] = {
            ctx.rel_path: ctx for ctx in contexts
        }
        self._callgraph: CallGraph | None = None
        self._cfgs: dict[int, CFG] = {}
        self._doms: dict[int, dict[int, set[int]]] = {}
        self._rule_cache: dict[str, object] = {}

    @property
    def callgraph(self) -> CallGraph:
        if self._callgraph is None:
            self._callgraph = CallGraph(self.modules.values())
        return self._callgraph

    def cfg(self, func: ast.FunctionDef | ast.AsyncFunctionDef) -> CFG:
        """The (cached) CFG for a function node from any scanned module."""
        cached = self._cfgs.get(id(func))
        if cached is None:
            cached = build_cfg(func)
            self._cfgs[id(func)] = cached
        return cached

    def dominators(
        self, func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> dict[int, set[int]]:
        """Cached dominator sets for ``func``'s CFG."""
        cached = self._doms.get(id(func))
        if cached is None:
            cached = _dominators(self.cfg(func))
            self._doms[id(func)] = cached
        return cached

    def function_info(
        self, ctx: "ModuleContext", func: ast.FunctionDef | ast.AsyncFunctionDef
    ) -> FunctionInfo | None:
        return self.callgraph.function_of(ctx, func)

    def cache(self, key: str, build: Callable[[], T]) -> T:
        """Scan-lifetime memo for rule-level artefacts (e.g. the set of
        transitively-mutating functions), keyed by rule-chosen name."""
        if key not in self._rule_cache:
            self._rule_cache[key] = build()
        return self._rule_cache[key]  # type: ignore[return-value]
