"""The :class:`Finding` record and its output formats.

A finding is one rule violation at one source location.  Findings are
value objects: the engine produces them, the baseline filters them, and
the CLI renders them as ``text`` (human), ``json`` (machine), or
``github`` (workflow annotations) — the same record in every format, so
a CI annotation and a local run always agree.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass

#: Severity levels, strongest first (used for sorting and GitHub mapping).
SEVERITIES = ("error", "warning")


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``path`` is repo-relative and POSIX-style so findings are stable
    across machines; ``symbol`` is the dotted enclosing scope
    (``Class.method``), the key the baseline matches on so entries
    survive unrelated line drift.
    """

    rule: str
    severity: str
    path: str
    line: int
    col: int
    message: str
    symbol: str = ""

    def sort_key(self) -> tuple:
        return (self.path, self.line, self.col, self.rule)

    def as_dict(self) -> dict:
        return asdict(self)

    def format_text(self) -> str:
        where = f"{self.path}:{self.line}:{self.col}"
        scope = f" [{self.symbol}]" if self.symbol else ""
        return f"{where}: {self.rule} {self.severity}: {self.message}{scope}"

    def format_github(self) -> str:
        """A GitHub Actions workflow-command annotation line."""
        kind = "error" if self.severity == "error" else "warning"
        title = f"{self.rule}: repro invariant"
        return (
            f"::{kind} file={self.path},line={self.line},col={self.col},"
            f"title={title}::{self.message}"
        )


def render(findings: list[Finding], fmt: str) -> str:
    """Render sorted findings in one of the supported formats."""
    ordered = sorted(findings, key=Finding.sort_key)
    if fmt == "json":
        return json.dumps(
            {"findings": [f.as_dict() for f in ordered]},
            indent=2,
            sort_keys=True,
        )
    if fmt == "github":
        return "\n".join(f.format_github() for f in ordered)
    if fmt == "text":
        return "\n".join(f.format_text() for f in ordered)
    raise ValueError(f"unknown format {fmt!r}; expected text, json, or github")
