"""Independent verification of a mining result against its database.

A filter-and-refine pipeline has several places where a bug would
produce *plausible but wrong* output (a miscounted pattern, a certified
pattern that is actually infrequent, a missed pattern).  This tool
re-derives the truth with the dumbest possible counting and audits a
:class:`~repro.core.results.MiningResult` against it:

* **soundness** — every reported pattern is genuinely frequent; every
  count flagged exact matches the true support; every estimated count
  is a valid upper bound;
* **completeness** — no frequent pattern is missing (checked against a
  brute-force enumeration; skippable for very large answer sets);
* **closure** — the answer set is downward-closed (every non-empty
  subset of a reported pattern is reported), which any correct frequent
  pattern set must satisfy.

:func:`verify_index` applies the same philosophy to a *persistent
index*: after a crash recovery (or any time at all), audit a BBS/DiskBBS
against its companion database — transaction counts must match, the
exact 1-item counts must agree, and every signature-based estimate must
upper-bound the true support (a superimposed code can over-estimate but
never under-estimate; an undercount means lost or corrupted slices).

The same checks power several integration tests; exposing them as a
tool lets downstream users audit results on their own data.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.baselines.naive import naive_frequent_patterns
from repro.core.results import MiningResult
from repro.data.database import TransactionDatabase


@dataclass
class VerificationReport:
    """Outcome of :func:`verify_result`."""

    checked_patterns: int = 0
    issues: list[str] = field(default_factory=list)
    completeness_checked: bool = False

    @property
    def ok(self) -> bool:
        """Whether the audit found no issues."""
        return not self.issues

    def add(self, message: str) -> None:
        """Append one issue message."""
        self.issues.append(message)

    def __str__(self) -> str:
        if self.ok:
            scope = "sound + complete" if self.completeness_checked else "sound"
            return f"OK: {self.checked_patterns} patterns verified ({scope})"
        head = f"{len(self.issues)} issue(s) in {self.checked_patterns} patterns:"
        return "\n".join([head] + [f"  - {issue}" for issue in self.issues])


def verify_result(
    result: MiningResult,
    database: TransactionDatabase,
    *,
    check_completeness: bool = True,
    max_issues: int = 25,
) -> VerificationReport:
    """Audit ``result`` against ``database``; returns a report."""
    report = VerificationReport(checked_patterns=len(result.patterns))
    threshold = result.min_support
    if len(database) != result.n_transactions:
        report.add(
            f"result covers {result.n_transactions} transactions, "
            f"database has {len(database)}"
        )

    reported = result.itemsets()
    for itemset, pattern in result.patterns.items():
        if len(report.issues) >= max_issues:
            report.add("... (further issues suppressed)")
            break
        true_support = database.support(itemset)
        label = sorted(map(str, itemset))
        if true_support < threshold:
            report.add(
                f"{label} reported frequent but has support "
                f"{true_support} < {threshold}"
            )
        if pattern.exact and pattern.count != true_support:
            report.add(
                f"{label} exact count {pattern.count} != true {true_support}"
            )
        if not pattern.exact and pattern.count < true_support:
            report.add(
                f"{label} estimated count {pattern.count} underestimates "
                f"true {true_support}"
            )
        # Downward closure: every (k-1)-subset must be reported too.
        if len(itemset) > 1:
            for item in itemset:
                subset = itemset - {item}
                if subset not in reported:
                    report.add(
                        f"{label} reported but its subset "
                        f"{sorted(map(str, subset))} is missing"
                    )
                    break

    if check_completeness and len(report.issues) < max_issues:
        truth = naive_frequent_patterns(database, threshold)
        report.completeness_checked = True
        missing = set(truth) - reported
        for itemset in sorted(missing, key=lambda s: (len(s), repr(s))):
            if len(report.issues) >= max_issues:
                report.add("... (further issues suppressed)")
                break
            report.add(
                f"frequent pattern {sorted(map(str, itemset))} "
                f"(support {truth[itemset]}) is missing from the result"
            )
    return report


def verify_index(
    index,
    database,
    *,
    max_issues: int = 25,
    pair_sample: int = 20,
) -> VerificationReport:
    """Audit a persistent index (BBS or DiskBBS) against its database.

    Checks, in increasing strictness:

    * the index and database cover the same number of transactions;
    * the exact per-item counts the index maintains match the database;
    * single-item and (sampled) pair estimates never *under*-estimate
      true support — the one direction a healthy superimposed-coding
      index can never err in, so an undercount always means damage.

    ``database`` may be any object with ``__len__``, iteration over
    transactions, ``items()`` and ``support()`` (both
    :class:`~repro.data.database.TransactionDatabase` and
    :class:`~repro.data.diskdb.DiskDatabase` qualify).
    """
    report = VerificationReport()
    if index.n_transactions != len(database):
        report.add(
            f"index covers {index.n_transactions} transactions, "
            f"database has {len(database)}"
        )

    db_counts = (
        database.item_counts()
        if callable(getattr(database, "item_counts", None))
        else {item: database.support([item]) for item in database.items()}
    )
    index_counts = index.item_counts
    for item in sorted(db_counts, key=repr):
        if len(report.issues) >= max_issues:
            report.add("... (further issues suppressed)")
            return report
        report.checked_patterns += 1
        true_count = db_counts[item]
        if index_counts.count(item) != true_count:
            report.add(
                f"item {item!r}: index count {index_counts.count(item)} "
                f"!= database count {true_count}"
            )
        estimate = index.count_itemset([item])
        if estimate < true_count:
            report.add(
                f"item {item!r}: estimate {estimate} underestimates "
                f"true support {true_count} (damaged slices?)"
            )

    items = sorted(db_counts, key=repr)
    for a, b in zip(items, items[1:]):
        if report.checked_patterns - len(db_counts) >= pair_sample:
            break
        if len(report.issues) >= max_issues:
            report.add("... (further issues suppressed)")
            return report
        report.checked_patterns += 1
        true_pair = database.support([a, b])
        estimate = index.count_itemset([a, b])
        if estimate < true_pair:
            report.add(
                f"pair [{a!r}, {b!r}]: estimate {estimate} underestimates "
                f"true support {true_pair}"
            )
    return report


def verify_item(index, database, item) -> str | None:
    """One incremental audit unit: audit a single item's counts.

    The building block the serving layer's background scrubber spreads
    across idle ticks.  Checks the two invariants of
    :func:`verify_index` for one item — the maintained exact count
    matches the database, and the signature estimate does not
    *under*-estimate (the one error direction a healthy superimposed
    code cannot produce).  Returns a problem description, or ``None``.
    """
    true_count = (
        database.item_counts().get(item, 0)
        if callable(getattr(database, "item_counts", None))
        else database.support([item])
    )
    index_count = index.item_counts.count(item)
    if index_count != true_count:
        return (
            f"item {item!r}: index count {index_count} != "
            f"database count {true_count}"
        )
    estimate = index.count_itemset([item])
    if estimate < true_count:
        return (
            f"item {item!r}: estimate {estimate} underestimates "
            f"true support {true_count} (damaged slices?)"
        )
    return None


def quick_audit(index, database, *, sample: int = 32, rng=None) -> VerificationReport:
    """Sampled index-vs-database audit; the serving ``recover`` gate.

    A bounded-cost version of :func:`verify_index`: the transaction
    counts must match and up to ``sample`` items (sampled
    deterministically unless ``rng`` says otherwise) must pass
    :func:`verify_item`.  Cheap enough to run synchronously on the
    event loop before a degraded server resumes accepting writes.
    """
    report = VerificationReport()
    if index.n_transactions != len(database):
        report.add(
            f"index covers {index.n_transactions} transactions, "
            f"database has {len(database)}"
        )
        return report
    items = list(database.items())
    if len(items) > sample:
        items = (rng or random.Random(0)).sample(items, sample)
    for item in sorted(items, key=repr):
        report.checked_patterns += 1
        issue = verify_item(index, database, item)
        if issue:
            report.add(issue)
    return report
