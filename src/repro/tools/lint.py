"""``python -m repro.tools.lint`` — run the repo invariant linter.

Exit codes: ``0`` clean (every finding suppressed or baselined), ``1``
unbaselined findings (or stale baseline entries under ``--strict``),
``2`` usage or baseline-file errors.

The ``github`` format emits workflow-command annotations so findings
land inline on pull requests; ``json`` is the machine format the
fixture tests consume.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.baseline import (
    DEFAULT_BASELINE_NAME,
    Baseline,
    BaselineError,
)
from repro.analysis.findings import render
from repro.analysis.engine import analyze_paths
from repro.analysis.rules import ALL_RULES, rules_by_id

DEFAULT_PATHS = ("src", "tests")


class SinceError(Exception):
    """``--since REV`` could not resolve the changed-file set."""


def _changed_python_files(
    rev: str, root: str, requested: list[str]
) -> list[str]:
    """Python files changed since ``rev`` (plus untracked), kept only
    when they live under one of the ``requested`` scan paths."""
    import subprocess

    base = Path(root)
    names: set[str] = set()
    for cmd in (
        ["git", "-C", str(base), "diff", "--name-only", "-z", rev, "--"],
        ["git", "-C", str(base), "ls-files", "--others",
         "--exclude-standard", "-z"],
    ):
        try:
            proc = subprocess.run(
                cmd, capture_output=True, text=True, check=False
            )
        except OSError as exc:
            raise SinceError(f"cannot run git: {exc}") from exc
        if proc.returncode != 0:
            detail = proc.stderr.strip() or f"exit code {proc.returncode}"
            raise SinceError(f"{' '.join(cmd[3:])} failed: {detail}")
        names.update(n for n in proc.stdout.split("\0") if n)
    prefixes = [p.rstrip("/") for p in (requested or list(DEFAULT_PATHS))]
    prefixes = [p[2:] if p.startswith("./") else p for p in prefixes]
    selected = []
    for name in sorted(names):
        if not name.endswith(".py"):
            continue
        if not (base / name).is_file():
            continue  # deleted since REV
        if any(name == p or name.startswith(p + "/") for p in prefixes):
            selected.append(str(base / name))
    return selected


def configure_parser(parser: argparse.ArgumentParser) -> argparse.ArgumentParser:
    """Attach the linter's arguments to ``parser`` (shared with the CLI)."""
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(DEFAULT_PATHS),
        help="files or directories to scan (default: src tests)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "github"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--since",
        default=None,
        metavar="REV",
        help="scan only python files changed since REV (git diff + "
             "untracked), intersected with the requested paths; stale "
             "baseline reporting is skipped (a partial scan cannot "
             "judge staleness)",
    )
    parser.add_argument(
        "--rule",
        action="append",
        default=None,
        metavar="RPRnnn",
        help="run only this rule (repeatable)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help=f"accepted-findings file (default: ./{DEFAULT_BASELINE_NAME} "
             f"when present)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; report every finding",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline to accept the current findings "
             "(existing justifications are preserved; new entries get a "
             "TODO that must be filled in)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="also fail (exit 1) on stale baseline entries",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="directory findings paths are made relative to (default: .)",
    )
    return parser


def _build_parser() -> argparse.ArgumentParser:
    return configure_parser(
        argparse.ArgumentParser(
            prog="repro-mine lint",
            description="AST/flow invariant linter (rules RPR001-RPR015)",
        )
    )


def _resolve_baseline(args) -> tuple[Baseline, Path | None]:
    if args.no_baseline:
        return Baseline.empty(), None
    if args.baseline is not None:
        path = Path(args.baseline)
        if args.write_baseline and not path.exists():
            return Baseline.empty(), path
        return Baseline.load(path), path
    default = Path(args.root) / DEFAULT_BASELINE_NAME
    if default.exists():
        return Baseline.load(default), default
    return Baseline.empty(), default


def _list_rules() -> int:
    for rule in ALL_RULES:
        print(f"{rule.id}  {rule.name} [{rule.severity}]")
        print(f"       {rule.rationale}")
    return 0


def main(argv=None) -> int:
    return run(_build_parser().parse_args(argv))


def run(args) -> int:
    """Execute a parsed lint invocation; returns the exit code."""
    if args.list_rules:
        return _list_rules()
    try:
        rules = rules_by_id(args.rule)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        baseline, baseline_path = _resolve_baseline(args)
    except BaselineError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    scan_paths = list(args.paths)
    since = getattr(args, "since", None)
    if since is not None:
        try:
            scan_paths = _changed_python_files(since, args.root, scan_paths)
        except SinceError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        if not scan_paths:
            if args.format == "text":
                print(
                    f"0 finding(s) (no python files changed since {since})",
                    file=sys.stderr,
                )
            return 0

    findings, skipped = analyze_paths(scan_paths, rules, root=args.root)
    for warning in skipped:
        print(f"warning: {warning}", file=sys.stderr)

    if args.write_baseline:
        if baseline_path is None:
            print(
                "error: --write-baseline needs a baseline path "
                "(drop --no-baseline or pass --baseline)",
                file=sys.stderr,
            )
            return 2
        document = baseline.regenerate(findings)
        baseline_path.write_text(
            json.dumps(document, indent=2, sort_keys=False) + "\n",
            encoding="utf-8",
        )
        print(
            f"wrote {baseline_path} ({len(document['entries'])} entr"
            f"{'y' if len(document['entries']) == 1 else 'ies'})"
        )
        return 0

    result = baseline.apply(findings)
    output = render(result.new, args.format)
    if output:
        print(output)
    report_stale = since is None
    if report_stale:
        for entry in result.stale:
            print(
                f"warning: stale baseline entry {entry.rule} at "
                f"{entry.path} [{entry.symbol}] no longer matches any "
                f"finding — remove it",
                file=sys.stderr,
            )
    if args.format == "text":
        summary = (
            f"{len(result.new)} finding(s), "
            f"{len(result.accepted)} baselined"
        )
        if report_stale:
            summary += (
                f", {len(result.stale)} stale baseline entr"
                f"{'y' if len(result.stale) == 1 else 'ies'}"
            )
        print(summary, file=sys.stderr)
    if result.new:
        return 1
    if args.strict and report_stale and result.stale:
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
