"""Operational tooling: result verification and diagnostics."""

from repro.tools.verify import VerificationReport, verify_result

__all__ = ["VerificationReport", "verify_result"]
