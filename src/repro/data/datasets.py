"""Canned datasets, including the paper's running example (Tables 1-2).

The running example is small enough to check by hand and is used
throughout the documentation and tests: five transactions over items
0-15, a single hash ``h(x) = x mod 8``, and 8-bit signatures.  The
module-level constants record the paper's own tables so tests can assert
bit-for-bit agreement.
"""

from __future__ import annotations

from repro.core.bbs import BBS
from repro.core.hashing import ModuloHashFamily
from repro.data.database import TransactionDatabase

#: Table 1 of the paper: TID -> item set.
RUNNING_EXAMPLE_TRANSACTIONS = {
    100: (0, 1, 2, 3, 4, 5, 14, 15),
    200: (1, 2, 3, 5, 6, 7),
    300: (1, 5, 14, 15),
    400: (0, 1, 2, 7),
    500: (1, 2, 5, 6, 11, 15),
}

#: Table 1's bit vectors (bit 0 = hash value 0 is the leftmost character).
#:
#: Note: the published Table 1 prints TID 500's vector as ``01101111``,
#: which contradicts its own item set {1, 2, 5, 6, 11, 15} — item 11
#: hashes to bit 3 (11 mod 8), not bit 4.  The paper's Example 2 counts
#: (est{0,1} = 2, est{1,3} = 3) agree with the corrected vector below,
#: so the printed table is a typo.
RUNNING_EXAMPLE_VECTORS = {
    100: "11111111",
    200: "01110111",
    300: "01000111",
    400: "11100001",
    500: "01110111",
}

#: Table 2 of the paper: the 8 bit-slices (one string per slice; the
#: i-th character of slice s is transaction i's bit).  Derived from the
#: item sets of Table 1; consistent with Example 2's worked counts.
RUNNING_EXAMPLE_SLICES = [
    "10010",
    "11111",
    "11011",
    "11001",
    "10000",
    "11101",
    "11101",
    "11111",
]

RUNNING_EXAMPLE_M = 8


def running_example() -> tuple[TransactionDatabase, BBS]:
    """The paper's Example 1: its database and its BBS, ready to query."""
    database = TransactionDatabase()
    bbs = BBS(
        RUNNING_EXAMPLE_M,
        hash_family=ModuloHashFamily(RUNNING_EXAMPLE_M),
    )
    for tid, items in sorted(RUNNING_EXAMPLE_TRANSACTIONS.items()):
        database.append(items, tid=tid)
        bbs.insert(items)
    return database, bbs


#: A tiny grocery-style dataset for doctests and quickstart output.
GROCERIES = [
    ("bread", "butter", "milk"),
    ("bread", "butter"),
    ("beer", "diapers"),
    ("bread", "milk"),
    ("beer", "bread", "butter", "milk"),
    ("diapers", "milk"),
    ("bread", "butter", "diapers"),
    ("beer", "diapers", "milk"),
]


def groceries() -> TransactionDatabase:
    """A small named-item database used by examples and docs."""
    return TransactionDatabase(GROCERIES)
