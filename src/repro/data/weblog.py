"""The dynamic web-server-log workload of Section 4.8.

The paper's dynamic-database experiment uses a web server with 5000
files where *"10% of the 'hot' files in the previous day will be 'cold'
the next day"*: a base database ``D0`` plus daily increments ``D1..Dn``.
The original trace is not available, so this simulator reproduces its
*structure* (see DESIGN.md, "Substitutions"): a rotating hot set, a
Zipf-like skew of accesses toward hot files, and day-by-day transaction
batches.  The experiment this feeds measures update handling — BBS
appends vs FP-tree rebuilds vs Apriori rescans — which depends only on
that structure.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class WeblogSpec:
    """Shape of the simulated server and its sessions."""

    n_files: int = 5000
    hot_fraction: float = 0.10      # share of files that are currently hot
    rotate_fraction: float = 0.10   # share of the hot set replaced per day
    hot_access_prob: float = 0.85   # P(a request goes to the hot set)
    avg_session_len: float = 8.0
    zipf_exponent: float = 1.1      # skew within the hot set
    seed: int = 0

    def __post_init__(self):
        if self.n_files < 10:
            raise ConfigurationError("need at least 10 files")
        if not 0.0 < self.hot_fraction < 1.0:
            raise ConfigurationError("hot_fraction must be in (0, 1)")
        if not 0.0 <= self.rotate_fraction <= 1.0:
            raise ConfigurationError("rotate_fraction must be in [0, 1]")
        if not 0.0 <= self.hot_access_prob <= 1.0:
            raise ConfigurationError("hot_access_prob must be in [0, 1]")
        if self.avg_session_len < 1:
            raise ConfigurationError("avg_session_len must be >= 1")


class WeblogSimulator:
    """Stateful day-by-day session generator.

    Usage::

        sim = WeblogSimulator(WeblogSpec(seed=7))
        d0 = sim.day_transactions(5000)   # the base database D0
        sim.advance_day()                 # 10% of hot files go cold
        d1 = sim.day_transactions(1000)   # the increment D1
    """

    def __init__(self, spec: WeblogSpec | None = None):
        self.spec = spec if spec is not None else WeblogSpec()
        self._rng = np.random.default_rng(self.spec.seed)
        n_hot = max(1, int(self.spec.n_files * self.spec.hot_fraction))
        shuffled = self._rng.permutation(self.spec.n_files)
        self._hot = list(shuffled[:n_hot])
        self._cold = list(shuffled[n_hot:])
        self._day = 0
        # Zipf-like weights over hot ranks, renormalised on rotation.
        ranks = np.arange(1, n_hot + 1, dtype=np.float64)
        self._hot_weights = ranks ** (-self.spec.zipf_exponent)
        self._hot_weights /= self._hot_weights.sum()

    @property
    def day(self) -> int:
        """The current simulated day (0 = the base day)."""
        return self._day

    @property
    def hot_files(self) -> list[int]:
        """The current hot set (a copy)."""
        return list(self._hot)

    def advance_day(self) -> None:
        """Rotate ``rotate_fraction`` of the hot set into the cold set."""
        self._day += 1
        n_rotate = int(len(self._hot) * self.spec.rotate_fraction)
        if n_rotate == 0 or not self._cold:
            return
        out_idx = self._rng.choice(len(self._hot), size=n_rotate, replace=False)
        newly_cold = [self._hot[i] for i in out_idx]
        in_idx = self._rng.choice(len(self._cold), size=n_rotate, replace=False)
        newly_hot = [self._cold[i] for i in in_idx]
        for slot, fresh in zip(sorted(out_idx), newly_hot):
            self._hot[slot] = fresh
        cold_kept = [f for i, f in enumerate(self._cold)
                     if i not in set(in_idx)]
        self._cold = cold_kept + newly_cold

    def session(self) -> tuple[int, ...]:
        """One user session: the distinct files it touched."""
        spec = self.spec
        length = max(1, int(self._rng.poisson(spec.avg_session_len)))
        files: set[int] = set()
        guard = 0
        while len(files) < length and guard < 8 * length + 16:
            guard += 1
            if self._rng.random() < spec.hot_access_prob:
                idx = int(self._rng.choice(len(self._hot), p=self._hot_weights))
                files.add(int(self._hot[idx]))
            else:
                files.add(int(self._cold[int(self._rng.integers(len(self._cold)))]))
        return tuple(sorted(files))

    def day_transactions(self, n_sessions: int) -> list[tuple[int, ...]]:
        """``n_sessions`` sessions for the current day."""
        if n_sessions < 0:
            raise ConfigurationError("n_sessions must be >= 0")
        return [self.session() for _ in range(n_sessions)]
