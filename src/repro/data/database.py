"""The transaction database abstraction.

The paper's database ``D`` is a sequence of variable-length transactions
over an item universe, stored in a file; the Probe refinement relies on
*"an index ... [whose] key is the relative position of the transaction
from the beginning of the file"*.  :class:`TransactionDatabase` models
exactly that: an append-only sequence of itemsets addressed by position,
with simulated page-level I/O accounting so that sequential scans and
positional probes have faithful relative costs even when the data lives
in memory (see :mod:`repro.storage.metrics`).

Transactions are stored as sorted tuples (deterministic iteration) and
membership tests use frozensets built lazily per access pattern.  Items
may be any hashable value; the synthetic generators use ``int`` items.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Iterator

from repro.errors import ConfigurationError, QueryError
from repro.storage.buffer import PageCache
from repro.storage.metrics import DEFAULT_PAGE_BYTES, IOStats

#: Simulated on-disk size of one item within a transaction record.
ITEM_BYTES = 4
#: Simulated per-record overhead (length header + TID).
RECORD_OVERHEAD_BYTES = 8

#: Default number of buffer-pool pages used to account positional probes.
DEFAULT_PROBE_CACHE_PAGES = 64


class TransactionDatabase:
    """Append-only database of transactions with positional access.

    Parameters
    ----------
    transactions:
        Optional initial transactions (any iterable of item iterables).
    page_bytes:
        Simulated page size used for I/O accounting.
    probe_cache_pages:
        Capacity of the buffer pool used when fetching by position.
    stats:
        Optional shared :class:`IOStats`; a fresh one is created if absent.
    """

    def __init__(
        self,
        transactions: Iterable[Iterable] | None = None,
        *,
        page_bytes: int = DEFAULT_PAGE_BYTES,
        probe_cache_pages: int = DEFAULT_PROBE_CACHE_PAGES,
        stats: IOStats | None = None,
    ):
        if page_bytes < RECORD_OVERHEAD_BYTES + ITEM_BYTES:
            raise ConfigurationError(
                f"page size {page_bytes} too small to hold a single record"
            )
        self.page_bytes = page_bytes
        self.stats = stats if stats is not None else IOStats()
        self._cache = PageCache(probe_cache_pages, self.stats)
        self._transactions: list[tuple] = []
        self._tids: list[int] = []
        self._offsets: list[int] = []
        self._next_byte = 0
        self._item_counts: Counter = Counter()
        if transactions is not None:
            for tx in transactions:
                self.append(tx)

    # -- construction -----------------------------------------------------

    def append(self, items: Iterable, tid: int | None = None) -> int:
        """Add a transaction; returns its position (0-based).

        ``tid`` is an optional application-level transaction identifier
        (the paper's examples use TIDs like 100, 200, ...); it defaults
        to the position.  Duplicate items within a transaction are
        collapsed, matching set semantics.
        """
        itemset = tuple(sorted(set(items), key=_sort_key))
        if not itemset:
            raise ConfigurationError("cannot append an empty transaction")
        position = len(self._transactions)
        self._transactions.append(itemset)
        self._tids.append(position if tid is None else tid)
        self._offsets.append(self._next_byte)
        self._next_byte += RECORD_OVERHEAD_BYTES + ITEM_BYTES * len(itemset)
        self._item_counts.update(itemset)
        return position

    def extend(self, transactions: Iterable[Iterable]) -> None:
        """Append many transactions."""
        for tx in transactions:
            self.append(tx)

    # -- introspection ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._transactions)

    def __iter__(self) -> Iterator[tuple]:
        """Iterate transactions *without* I/O accounting (test/oracle use)."""
        return iter(self._transactions)

    @property
    def size_bytes(self) -> int:
        """Simulated on-disk size of the database."""
        return self._next_byte

    @property
    def n_pages(self) -> int:
        """Simulated number of data pages."""
        if self._next_byte == 0:
            return 0
        return (self._next_byte + self.page_bytes - 1) // self.page_bytes

    def tid(self, position: int) -> int:
        """Application-level TID of the transaction at ``position``."""
        return self._tids[position]

    def tids(self) -> list[int]:
        """All TIDs in position order (a copy)."""
        return list(self._tids)

    def items(self) -> list:
        """Distinct items present in the database, sorted."""
        return sorted(self._item_counts, key=_sort_key)

    def item_counts(self) -> dict:
        """Exact support of every item (a copy)."""
        return dict(self._item_counts)

    # -- accounted access --------------------------------------------------

    def scan(self) -> Iterator[tuple[int, tuple]]:
        """Sequential scan: yields ``(position, itemset)`` and charges I/O.

        One ``db_scans`` tick plus one ``page_read`` per data page, the
        cost structure of the paper's SequentialScan refinement and of
        every Apriori pass.
        """
        self.stats.db_scans += 1
        self.stats.page_reads += self.n_pages
        self.stats.tuples_read += len(self._transactions)
        for position, itemset in enumerate(self._transactions):
            yield position, itemset

    def fetch(self, position: int) -> tuple:
        """Positional fetch through the buffer pool (the Probe access path)."""
        if not 0 <= position < len(self._transactions):
            raise QueryError(
                f"transaction position {position} out of range "
                f"[0, {len(self._transactions)})"
            )
        page_id = self._offsets[position] // self.page_bytes
        self._cache.get(page_id)
        self.stats.probe_fetches += 1
        self.stats.tuples_read += 1
        return self._transactions[position]

    def fetch_many(self, positions: Iterable[int]) -> list[tuple]:
        """Fetch several positions (each individually accounted)."""
        return [self.fetch(p) for p in positions]

    # -- oracle helpers (unaccounted; used by tests and rule generation) ----

    def support(self, itemset: Iterable) -> int:
        """Exact number of transactions containing ``itemset`` (no I/O)."""
        wanted = set(itemset)
        if not wanted:
            raise QueryError("support of the empty itemset is undefined here")
        return sum(1 for tx in self._transactions if wanted.issubset(tx))

    def reset_io(self) -> None:
        """Zero the I/O counters and drop the buffer pool contents."""
        self.stats.reset()
        self._cache.clear()


def _sort_key(item):
    """Stable ordering across mixed item types (ints before strings)."""
    return (type(item).__name__, item)
