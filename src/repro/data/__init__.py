"""Databases and workload generators."""

from repro.data.database import TransactionDatabase
from repro.data.datasets import groceries, running_example

__all__ = [
    "TransactionDatabase",
    "groceries",
    "running_example",
]
