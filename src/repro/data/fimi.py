"""FIMI-format transaction files (the community's interchange format).

The Frequent Itemset Mining Implementations repository standardised the
simplest possible text format — one transaction per line, items as
space-separated non-negative integers::

    1 4 9 13
    4 9
    2 13 40

Real benchmark datasets (retail, kosarak, T10I4D100K, ...) all ship
this way, so supporting it makes the library directly usable on them.
Blank lines and ``#`` comments are tolerated on read; duplicates within
a line collapse (set semantics, matching the rest of the library).
"""

from __future__ import annotations

from pathlib import Path

from repro.data.database import TransactionDatabase
from repro.errors import StorageError


def read_fimi(path, *, max_transactions: int | None = None) -> TransactionDatabase:
    """Load a FIMI text file into a :class:`TransactionDatabase`."""
    target = Path(path)
    try:
        text = target.read_text()
    except OSError as exc:
        raise StorageError(
            f"cannot read FIMI file {target}: {exc}", path=target
        ) from exc
    database = TransactionDatabase()
    for line_no, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        try:
            items = [int(piece) for piece in line.split()]
        except ValueError as exc:
            raise StorageError(
                f"{target}:{line_no}: FIMI lines must be integers, "
                f"got {raw!r}", path=target,
            ) from exc
        if any(item < 0 for item in items):
            raise StorageError(
                f"{target}:{line_no}: FIMI items must be non-negative",
                path=target,
            )
        database.append(items)
        if max_transactions is not None and len(database) >= max_transactions:
            break
    if len(database) == 0:
        raise StorageError(
            f"FIMI file {target} contains no transactions", path=target
        )
    return database


def write_fimi(database, path) -> int:
    """Write a database (any iterable of itemsets) as a FIMI file.

    Returns the number of transactions written.
    """
    target = Path(path)
    count = 0
    with open(target, "w") as fh:
        for transaction in database:
            items = sorted(int(item) for item in transaction)
            fh.write(" ".join(str(item) for item in items))
            fh.write("\n")
            count += 1
    return count
