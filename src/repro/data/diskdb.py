"""A disk-backed transaction database with real (not simulated) paging.

:class:`DiskDatabase` mirrors the accounted API of
:class:`~repro.data.database.TransactionDatabase` — ``scan``, ``fetch``,
``append``, exact ``support`` — but reads records from a
:mod:`repro.storage.txfile` pair on disk through a page buffer.  Every
miner in the library accepts either flavour, so the same experiment can
be run fully in memory (fast iteration) or against files (the paper's
actual setting).

Items are ``uint32`` integers; see :mod:`repro.storage.txfile` for the
format, its corruption detection, and the salvage path.  A database
whose writer died mid-append can be reopened with
:meth:`DiskDatabase.recover`, which restores the pair to the last
complete record before opening.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Iterator
from pathlib import Path

from repro.errors import QueryError
from repro.storage.buffer import PageCache
from repro.storage.metrics import DEFAULT_PAGE_BYTES, IOStats
from repro.storage.txfile import TransactionFileReader, TransactionFileWriter

DEFAULT_PROBE_CACHE_PAGES = 64


class DiskDatabase:
    """Transactions stored in a file pair, accessed through a buffer pool."""

    def __init__(
        self,
        path,
        *,
        page_bytes: int = DEFAULT_PAGE_BYTES,
        probe_cache_pages: int = DEFAULT_PROBE_CACHE_PAGES,
        stats: IOStats | None = None,
    ):
        self.path = Path(path)
        self.page_bytes = page_bytes
        self.stats = stats if stats is not None else IOStats()
        self._cache = PageCache(probe_cache_pages, self.stats)
        self._reader = TransactionFileReader(self.path)
        self._item_counts: Counter | None = None
        #: Salvage report when opened via :meth:`recover`, else ``None``.
        self.last_recovery = None

    # -- construction ------------------------------------------------------

    @classmethod
    def create(
        cls,
        path,
        transactions: Iterable[Iterable[int]],
        **kwargs,
    ) -> "DiskDatabase":
        """Write ``transactions`` to ``path`` and open the result."""
        with TransactionFileWriter(path) as writer:
            for tx in transactions:
                writer.append(tx)
        return cls(path, **kwargs)

    @classmethod
    def recover(cls, path, **kwargs) -> "DiskDatabase":
        """Salvage a possibly-torn transaction-file pair, then open it.

        Truncates any torn final record and rebuilds the positional
        index from the data file (the data file is the ground truth;
        the index is derived).  The
        :class:`~repro.storage.txfile.TxSalvageReport` is attached as
        :attr:`last_recovery`.
        """
        from repro.storage.txfile import salvage_txfile

        stats = kwargs.get("stats")
        report = salvage_txfile(path, stats=stats)
        db = cls(path, **kwargs)
        db.last_recovery = report
        return db

    def append(self, items: Iterable[int], tid: int | None = None) -> int:
        """Append one transaction (closing and reopening the reader)."""
        self._reader.close()
        with TransactionFileWriter(
            self.path, truncate=False, stats=self.stats
        ) as writer:
            writer.append(items, tid=tid)
        self.stats.page_writes += 1
        self._reader = TransactionFileReader(self.path)
        self._cache.clear()
        self._item_counts = None
        return len(self._reader) - 1

    def extend(self, transactions: Iterable[Iterable[int]]) -> None:
        """Append many transactions with a single writer session."""
        self._reader.close()
        with TransactionFileWriter(
            self.path, truncate=False, stats=self.stats
        ) as writer:
            for tx in transactions:
                writer.append(tx)
                self.stats.page_writes += 1
        self._reader = TransactionFileReader(self.path)
        self._cache.clear()
        self._item_counts = None

    # -- introspection --------------------------------------------------------

    def __len__(self) -> int:
        return len(self._reader)

    def __iter__(self) -> Iterator[tuple]:
        """Unaccounted iteration (test/oracle use)."""
        for _, _, items in self._reader.scan():
            yield items

    @property
    def size_bytes(self) -> int:
        """On-disk size of the data file."""
        return self._reader.data_bytes

    @property
    def n_pages(self) -> int:
        """Number of data pages at the configured page size."""
        return (self.size_bytes + self.page_bytes - 1) // self.page_bytes

    def items(self) -> list:
        """Distinct items present in the database, sorted."""
        return sorted(self._counts())

    def item_counts(self) -> dict:
        """Exact support of every item (a copy)."""
        return dict(self._counts())

    def _counts(self) -> Counter:
        if self._item_counts is None:
            counter: Counter = Counter()
            for _, _, items in self._reader.scan():
                counter.update(items)
            self._item_counts = counter
        return self._item_counts

    # -- accounted access -------------------------------------------------------

    def scan(self) -> Iterator[tuple[int, tuple]]:
        """Sequential scan with the same accounting as the in-memory DB."""
        self.stats.db_scans += 1
        self.stats.page_reads += self.n_pages
        self.stats.tuples_read += len(self)
        for position, _, items in self._reader.scan():
            yield position, items

    def fetch(self, position: int) -> tuple:
        """Positional fetch through the buffer pool."""
        if not 0 <= position < len(self):
            raise QueryError(
                f"transaction position {position} out of range [0, {len(self)})"
            )
        page_id = self._reader.offset_of(position) // self.page_bytes
        self._cache.get(page_id)
        self.stats.probe_fetches += 1
        self.stats.tuples_read += 1
        _, items = self._reader.read_at(position)
        return items

    def fetch_many(self, positions: Iterable[int]) -> list[tuple]:
        """Fetch several positions (each individually accounted)."""
        return [self.fetch(p) for p in positions]

    def tid(self, position: int) -> int:
        """Application-level TID of the transaction at ``position``."""
        tid, _ = self._reader.read_at(position)
        return tid

    def tids(self) -> list[int]:
        """All TIDs in position order."""
        return [tid for _, tid, _ in self._reader.scan()]

    # -- oracle helpers ------------------------------------------------------------

    def support(self, itemset: Iterable) -> int:
        """Exact support of ``itemset`` by unaccounted scanning."""
        wanted = set(itemset)
        if not wanted:
            raise QueryError("support of the empty itemset is undefined here")
        return sum(1 for tx in self if wanted.issubset(tx))

    def reset_io(self) -> None:
        """Zero the I/O counters and drop the buffer pool contents."""
        self.stats.reset()
        self._cache.clear()

    def close(self) -> None:
        """Close the underlying file handles."""
        self._reader.close()

    def __enter__(self) -> "DiskDatabase":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
