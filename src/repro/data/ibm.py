"""The IBM Quest synthetic transaction generator (Agrawal & Srikant '94).

The paper's Section 4 evaluates on *"synthetic data sets ... generated
using the procedure described in [1]"* with four knobs: the number of
transactions ``D``, the number of distinct items ``V``, the average
transaction size ``T``, and the average size of the maximal potentially
frequent itemsets ``I`` (e.g. the default ``T10.I10.D10K`` with 10K
items).  This module implements that procedure:

1. ``L`` *potentially frequent itemsets* are drawn; each one's size is
   Poisson with mean ``I`` (minimum 1).  To model cross-itemset
   correlation, a fraction of each itemset (exponentially distributed
   with mean ``correlation``) is copied from the previous itemset and
   the rest is drawn uniformly.
2. Each potential itemset carries an exponentially distributed weight
   (normalised to a probability) and a *corruption level* drawn from a
   clipped N(0.5, 0.1²).
3. A transaction's size is Poisson with mean ``T`` (minimum 1).  It is
   filled by picking potential itemsets by weight and *corrupting* them
   — items are dropped while a uniform draw stays below the corruption
   level.  An itemset that no longer fits is added anyway in half the
   cases and deferred to the next transaction otherwise.

Everything is driven by one :class:`numpy.random.Generator` seeded from
``spec.seed``, so a spec generates the same database forever.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.data.database import TransactionDatabase
from repro.errors import ConfigurationError

DEFAULT_N_PATTERNS = 2000
DEFAULT_CORRELATION = 0.5
DEFAULT_CORRUPTION_MEAN = 0.5
DEFAULT_CORRUPTION_SD = 0.1


@dataclass(frozen=True)
class QuestSpec:
    """The T..I..D.. workload specification (paper Section 4 notation)."""

    n_transactions: int = 10_000       # D
    n_items: int = 10_000              # V
    avg_transaction_size: float = 10.0  # T
    avg_pattern_size: float = 10.0      # I
    n_patterns: int = DEFAULT_N_PATTERNS  # |L|
    correlation: float = DEFAULT_CORRELATION
    corruption_mean: float = DEFAULT_CORRUPTION_MEAN
    corruption_sd: float = DEFAULT_CORRUPTION_SD
    seed: int = 0

    def __post_init__(self):
        if self.n_transactions < 1:
            raise ConfigurationError("need at least one transaction")
        if self.n_items < 2:
            raise ConfigurationError("need at least two items")
        if self.avg_transaction_size < 1:
            raise ConfigurationError("average transaction size must be >= 1")
        if self.avg_pattern_size < 1:
            raise ConfigurationError("average pattern size must be >= 1")
        if self.n_patterns < 1:
            raise ConfigurationError("need at least one potential pattern")
        if not 0.0 <= self.correlation <= 1.0:
            raise ConfigurationError("correlation must be in [0, 1]")

    @property
    def name(self) -> str:
        """The paper's naming convention, e.g. ``T10.I10.D10K``."""
        return (
            f"T{self.avg_transaction_size:g}."
            f"I{self.avg_pattern_size:g}."
            f"D{_abbrev(self.n_transactions)}"
        )

    def with_(self, **changes) -> "QuestSpec":
        """A modified copy (used by benchmark sweeps)."""
        return replace(self, **changes)


def _abbrev(n: int) -> str:
    if n % 1_000_000 == 0:
        return f"{n // 1_000_000}M"
    if n % 1_000 == 0:
        return f"{n // 1_000}K"
    return str(n)


class _PotentialItemsets:
    """The weighted pool of potentially frequent itemsets (step 1-2)."""

    def __init__(self, spec: QuestSpec, rng: np.random.Generator):
        self.itemsets: list[np.ndarray] = []
        sizes = np.maximum(1, rng.poisson(spec.avg_pattern_size, spec.n_patterns))
        previous: np.ndarray | None = None
        for size in sizes:
            size = int(min(size, spec.n_items))
            if previous is None or previous.size == 0:
                chosen = rng.choice(spec.n_items, size=size, replace=False)
            else:
                fraction = min(1.0, rng.exponential(spec.correlation))
                n_carry = min(int(round(fraction * size)), previous.size, size)
                carried = rng.choice(previous, size=n_carry, replace=False)
                fresh_needed = size - n_carry
                fresh = rng.choice(spec.n_items, size=size, replace=False)
                fresh = np.setdiff1d(fresh, carried, assume_unique=False)
                chosen = np.concatenate([carried, fresh[:fresh_needed]])
            chosen = np.unique(chosen)
            self.itemsets.append(chosen)
            previous = chosen
        weights = rng.exponential(1.0, len(self.itemsets))
        self.weights = weights / weights.sum()
        self.corruption = np.clip(
            rng.normal(spec.corruption_mean, spec.corruption_sd,
                       len(self.itemsets)),
            0.0, 1.0,
        )

    def pick(self, rng: np.random.Generator) -> int:
        """Index of one potential itemset, drawn by weight."""
        return int(rng.choice(len(self.itemsets), p=self.weights))

    def corrupted(self, index: int, rng: np.random.Generator) -> np.ndarray:
        """A copy of itemset ``index`` with items dropped per its level."""
        items = self.itemsets[index]
        level = self.corruption[index]
        keep = len(items)
        while keep > 0 and rng.random() < level:
            keep -= 1
        if keep == len(items):
            return items
        return rng.choice(items, size=keep, replace=False)


def generate_transactions(spec: QuestSpec) -> list[tuple[int, ...]]:
    """Generate the transaction list for ``spec`` (deterministic in seed)."""
    rng = np.random.default_rng(spec.seed)
    pool = _PotentialItemsets(spec, rng)
    transactions: list[tuple[int, ...]] = []
    deferred: np.ndarray | None = None
    sizes = np.maximum(
        1, rng.poisson(spec.avg_transaction_size, spec.n_transactions)
    )
    for size in sizes:
        size = int(size)
        current: set[int] = set()
        if deferred is not None:
            current.update(int(i) for i in deferred)
            deferred = None
        guard = 0
        while len(current) < size and guard < 8 * size + 16:
            guard += 1
            piece = pool.corrupted(pool.pick(rng), rng)
            if piece.size == 0:
                continue
            if len(current) + piece.size > size and current:
                # Doesn't fit: add anyway half the time, defer otherwise.
                if rng.random() < 0.5:
                    current.update(int(i) for i in piece)
                else:
                    deferred = piece
                break
            current.update(int(i) for i in piece)
        if not current:
            # Degenerate corruption can empty every pick; fall back to a
            # single uniform item so the transaction is never empty.
            current.add(int(rng.integers(spec.n_items)))
        transactions.append(tuple(sorted(current)))
    return transactions


def generate_database(spec: QuestSpec) -> TransactionDatabase:
    """Generate a :class:`TransactionDatabase` for ``spec``."""
    return TransactionDatabase(generate_transactions(spec))
